//! The real-socket transport: the wire [`protocol`](crate::protocol) over
//! TCP and Unix-domain sockets, so server and clients run as separate OS
//! processes (`loadpart serve` / `loadpart smoke`).
//!
//! # Stream framing
//!
//! A [`Frame`]'s channel encoding is not self-delimiting on a byte stream,
//! so every frame is prefixed with its little-endian `u32` wire length:
//!
//! ```text
//! u32-le total_len ++ header bytes ++ payload bytes
//! ```
//!
//! [`SocketChannel::send_split`] writes the prefix, header and payload as
//! three sequential writes — the multi-MB tensor payload is never
//! flattened into a fresh contiguous buffer. Declared lengths above
//! [`MAX_FRAME_BYTES`] are refused with [`ProtocolError::Oversized`]
//! before any allocation, on both the send and receive side.
//!
//! # Deadline semantics
//!
//! [`FrameChannel::recv_deadline`] is implemented over `SO_RCVTIMEO`: each
//! read sets the socket read timeout to the remaining deadline budget. A
//! timeout mid-frame leaves the incremental `FrameReader` positioned
//! exactly where it stopped — the next `recv_deadline` resumes the same
//! frame, so a deadline never desyncs the stream. Only a genuinely broken
//! stream (EOF, I/O error, oversized declared length) poisons the reader,
//! after which every operation reports [`ProtocolError::Disconnected`].
//!
//! # Server side
//!
//! [`SocketServer`] owns a [`ServerHandle`] plus an acceptor thread; each
//! accepted connection becomes one mux session ([`SessionConnector`])
//! bridged by an ingress thread (socket → mux) and an egress thread
//! (session replies → socket). The mux loop, admission control, fault
//! scripts and telemetry are exactly the in-process server's — the socket
//! layer is a pure transport.

use crate::pool::zero_payload;
use crate::protocol::{Frame, Message, ProtocolError, MAX_PAYLOAD_BYTES};
use crate::threaded::{ClientConn, FrameChannel, ServerHandle, SessionConnector};
use bytes::Bytes;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on one frame's declared wire length: the protocol's payload
/// cap plus generous room for the largest fixed-width header. A peer
/// declaring more is corrupt or hostile; the reader refuses to allocate.
pub const MAX_FRAME_BYTES: u32 = MAX_PAYLOAD_BYTES as u32 + 256;

/// The byte-stream sockets the framed channel can run over: `Read`/`Write`
/// plus the clone/timeout/shutdown surface `std::net` sockets share.
pub trait NetStream: Read + Write + Send + Sized + 'static {
    /// A second handle to the same socket (independent read/write halves).
    ///
    /// # Errors
    ///
    /// Propagates the OS error when the descriptor cannot be duplicated.
    fn try_clone_stream(&self) -> io::Result<Self>;

    /// Sets (or clears, with `None`) the socket read timeout.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Shuts down both directions, unblocking any reader.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn shutdown_both(&self) -> io::Result<()>;
}

impl NetStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

#[cfg(unix)]
impl NetStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

/// Incremental length-prefixed frame reader over a [`NetStream`].
///
/// Holds partial state across reads, so a deadline expiring mid-frame
/// (prefix half-read, body half-read) resumes cleanly on the next call
/// instead of desyncing the stream.
struct FrameReader<S> {
    stream: S,
    /// The four length-prefix bytes being assembled.
    prefix: [u8; 4],
    prefix_got: usize,
    /// The frame body being assembled (sized once the prefix completes).
    body: Vec<u8>,
    body_got: usize,
    /// Set on EOF, I/O error or an oversized declared length: the stream
    /// position is no longer trustworthy, every later call disconnects.
    poisoned: bool,
}

impl<S: NetStream> FrameReader<S> {
    fn new(stream: S) -> Self {
        Self {
            stream,
            prefix: [0u8; 4],
            prefix_got: 0,
            body: Vec::new(),
            body_got: 0,
            poisoned: false,
        }
    }

    /// Reads one whole frame. `deadline: None` blocks until a frame, EOF
    /// or error; `Some` enforces it via the socket read timeout and
    /// returns [`ProtocolError::Timeout`] with the partial state kept.
    fn read_frame(&mut self, deadline: Option<Instant>) -> Result<Bytes, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::Disconnected);
        }
        loop {
            match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(ProtocolError::Timeout);
                    }
                    // A zero Duration means "no timeout" to the OS; clamp
                    // up so the deadline stays a deadline.
                    self.stream
                        .set_read_timeout_stream(Some(remaining.max(Duration::from_millis(1))))
                        .map_err(|_| self.poison())?;
                }
                None => self
                    .stream
                    .set_read_timeout_stream(None)
                    .map_err(|_| self.poison())?,
            }
            if self.prefix_got < 4 {
                let got = self.prefix_got;
                match self.stream.read(&mut self.prefix[got..]) {
                    Ok(0) => return Err(self.poison()),
                    Ok(n) => {
                        self.prefix_got += n;
                        if self.prefix_got == 4 {
                            let len = u32::from_le_bytes(self.prefix);
                            if len > MAX_FRAME_BYTES {
                                self.poisoned = true;
                                return Err(ProtocolError::Oversized(len as usize));
                            }
                            self.body = vec![0u8; len as usize];
                            self.body_got = 0;
                        }
                    }
                    Err(e) => match self.classify(e) {
                        Some(err) => return Err(err),
                        None => continue,
                    },
                }
                continue;
            }
            if self.body_got < self.body.len() {
                let got = self.body_got;
                match self.stream.read(&mut self.body[got..]) {
                    Ok(0) => return Err(self.poison()),
                    Ok(n) => self.body_got += n,
                    Err(e) => match self.classify(e) {
                        Some(err) => return Err(err),
                        None => continue,
                    },
                }
                continue;
            }
            // Frame complete: hand it off and reset for the next one.
            self.prefix_got = 0;
            self.body_got = 0;
            return Ok(Bytes::from(std::mem::take(&mut self.body)));
        }
    }

    /// Marks the stream broken and returns the error to report.
    fn poison(&mut self) -> ProtocolError {
        self.poisoned = true;
        ProtocolError::Disconnected
    }

    /// Maps a read error: timeouts surface (state kept), interrupts retry
    /// (`None`), everything else poisons the stream.
    fn classify(&mut self, e: io::Error) -> Option<ProtocolError> {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Some(ProtocolError::Timeout),
            io::ErrorKind::Interrupted => None,
            _ => Some(self.poison()),
        }
    }
}

/// Writes one length-prefixed frame: prefix, header, payload — three
/// sequential writes, no flattening.
fn write_frame<S: NetStream>(stream: &mut S, frame: &Frame) -> Result<(), ProtocolError> {
    let total = frame.len();
    let len = u32::try_from(total)
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or(ProtocolError::Oversized(total))?;
    let io = |_: io::Error| ProtocolError::Disconnected;
    stream.write_all(&len.to_le_bytes()).map_err(io)?;
    stream.write_all(&frame.header).map_err(io)?;
    if !frame.payload.is_empty() {
        stream.write_all(&frame.payload).map_err(io)?;
    }
    stream.flush().map_err(io)
}

/// A [`FrameChannel`] over any [`NetStream`]: the client side of the
/// socket transport. Internally two halves of one socket — a locked
/// incremental reader and a locked writer — so the channel is `Sync` like
/// the in-process endpoints.
pub struct SocketChannel<S: NetStream> {
    reader: Mutex<FrameReader<S>>,
    writer: Mutex<S>,
}

/// The TCP incarnation of [`SocketChannel`].
pub type TcpFrameChannel = SocketChannel<TcpStream>;

/// The Unix-domain-socket incarnation of [`SocketChannel`].
#[cfg(unix)]
pub type UdsFrameChannel = SocketChannel<UnixStream>;

impl<S: NetStream> SocketChannel<S> {
    /// Wraps an already-connected stream.
    ///
    /// # Errors
    ///
    /// Propagates the OS error when the socket cannot be duplicated into
    /// read/write halves.
    pub fn from_stream(stream: S) -> io::Result<Self> {
        let writer = stream.try_clone_stream()?;
        Ok(Self {
            reader: Mutex::new(FrameReader::new(stream)),
            writer: Mutex::new(writer),
        })
    }
}

impl TcpFrameChannel {
    /// Connects to a `loadpart serve` (or [`SocketServer`]) TCP endpoint.
    /// Nagle's algorithm is disabled: the protocol is request/response and
    /// a 40 ms delayed-ACK stall would dwarf every deadline in the suite.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::from_stream(stream)
    }
}

#[cfg(unix)]
impl UdsFrameChannel {
    /// Connects to a Unix-domain-socket endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_path<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        Self::from_stream(UnixStream::connect(path)?)
    }
}

impl<S: NetStream> FrameChannel for SocketChannel<S> {
    fn send(&self, frame: Bytes) -> Result<(), ProtocolError> {
        self.send_split(Frame::from_contiguous(frame))
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<Bytes, ProtocolError> {
        self.reader
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .read_frame(Some(deadline))
    }

    fn send_split(&self, frame: Frame) -> Result<(), ProtocolError> {
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        write_frame(&mut *writer, &frame)
    }
}

/// Measures round-trip goodput over any [`FrameChannel`] by wall-clock
/// timing one probe exchange of `probe_bytes`, in Mbps.
///
/// Unlike the simulated-link profiler this measures *real* elapsed time,
/// which can collapse to ~zero on a loopback socket — yielding absurd or
/// even infinite rates. Feed the result to
/// `BandwidthEstimator::record`, which rejects non-finite and
/// non-positive samples at the door.
///
/// # Errors
///
/// Propagates [`ProtocolError`] from the exchange; a reply that is not a
/// probe acknowledgement surfaces as [`ProtocolError::Unexpected`].
pub fn measure_bandwidth<C: FrameChannel + ?Sized>(
    channel: &C,
    probe_bytes: usize,
    timeout: Duration,
) -> Result<f64, ProtocolError> {
    let frame = Message::Probe {
        payload: zero_payload(probe_bytes),
    }
    .to_frame()?;
    let start = Instant::now();
    channel.send_split(frame)?;
    let deadline = start + timeout;
    loop {
        match Message::decode_frame(channel.recv_split_deadline(deadline)?)? {
            Message::ProbeAck => break,
            // Stale survivors of an earlier timed-out exchange: skip.
            Message::OffloadResponse { .. }
            | Message::LoadReply { .. }
            | Message::Rejected { .. } => continue,
            other => return Err(ProtocolError::Unexpected(other.tag())),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    if elapsed <= 0.0 {
        return Ok(f64::INFINITY); // the estimator guard rejects this
    }
    Ok(probe_bytes as f64 * 8.0 / (elapsed * 1e6))
}

/// Anything the acceptor can listen on.
trait FrameListener: Send + 'static {
    type Stream: NetStream;

    /// One non-blocking accept attempt.
    fn accept_stream(&self) -> io::Result<Self::Stream>;
}

impl FrameListener for TcpListener {
    type Stream = TcpStream;

    fn accept_stream(&self) -> io::Result<TcpStream> {
        let (stream, _) = self.accept()?;
        stream.set_nodelay(true)?;
        // Accepted from a non-blocking listener: the stream inherits
        // non-blocking on some platforms; bridge threads want blocking.
        stream.set_nonblocking(false)?;
        Ok(stream)
    }
}

#[cfg(unix)]
impl FrameListener for UnixListener {
    type Stream = UnixStream;

    fn accept_stream(&self) -> io::Result<UnixStream> {
        let (stream, _) = self.accept()?;
        stream.set_nonblocking(false)?;
        Ok(stream)
    }
}

/// Exposes a running threaded server over a real socket: owns the
/// [`ServerHandle`] and an acceptor thread that bridges each accepted
/// connection to its own mux session.
///
/// Dropping the server (without [`SocketServer::wait`] /
/// [`SocketServer::shutdown`]) stops the acceptor and shuts the mux down,
/// like dropping a bare [`ServerHandle`].
pub struct SocketServer {
    server: Option<ServerHandle>,
    addr: String,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SocketServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl SocketServer {
    /// Binds `server` to a TCP address (`"127.0.0.1:0"` picks a free
    /// port; read it back from [`SocketServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_tcp<A: ToSocketAddrs>(addr: A, server: ServerHandle) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        Ok(Self::start(listener, local, server))
    }

    /// Binds `server` to a Unix-domain socket path, replacing any stale
    /// socket file left by a previous run.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    #[cfg(unix)]
    pub fn bind_uds<P: AsRef<std::path::Path>>(path: P, server: ServerHandle) -> io::Result<Self> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let local = path.display().to_string();
        listener.set_nonblocking(true)?;
        Ok(Self::start(listener, local, server))
    }

    fn start<L: FrameListener>(listener: L, addr: String, server: ServerHandle) -> Self {
        let connector = server.connector();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("loadpart-accept".into())
            .spawn(move || accept_loop(&listener, &connector, &stop_flag))
            .expect("spawn acceptor thread");
        Self {
            server: Some(server),
            addr,
            stop,
            acceptor: Some(acceptor),
        }
    }

    /// The bound address: `host:port` for TCP, the socket path for UDS.
    #[must_use]
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Blocks until a client shuts the server down over the wire
    /// ([`Message::Shutdown`]), then returns the served-offload count.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ServerPanicked`] when the server thread panicked.
    pub fn wait(mut self) -> Result<u64, ProtocolError> {
        let served = self.server.take().expect("not yet joined").wait();
        self.stop_acceptor();
        served
    }

    /// Shuts the server down from this process and returns the
    /// served-offload count, like [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ServerPanicked`] when the server thread panicked.
    pub fn shutdown(mut self) -> Result<u64, ProtocolError> {
        let served = self.server.take().expect("not yet joined").shutdown();
        self.stop_acceptor();
        served
    }

    fn stop_acceptor(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.acceptor.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_acceptor();
        // A remaining ServerHandle shuts the mux down on its own drop.
    }
}

/// How long the acceptor sleeps between non-blocking accept attempts.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn accept_loop<L: FrameListener>(listener: &L, connector: &SessionConnector, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept_stream() {
            Ok(stream) => spawn_bridge(stream, connector.connect()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Bridges one accepted socket to one mux session with two detached
/// threads. Lifecycle is self-cleaning in both directions: when the mux
/// exits, the session's reply channel disconnects, egress shuts the socket
/// down, and ingress unblocks on EOF; when the client closes the socket,
/// ingress exits and drops its mux sender, egress keeps serving until the
/// reply channel drains or its write fails.
fn spawn_bridge<S: NetStream>(stream: S, conn: ClientConn) {
    let Ok(mut egress_stream) = stream.try_clone_stream() else {
        return; // client is gone already
    };
    let (to_mux, from_mux) = conn.split();
    let _ = std::thread::Builder::new()
        .name("loadpart-egress".into())
        .spawn(move || {
            while let Ok(frame) = from_mux.recv() {
                if write_frame(&mut egress_stream, &frame).is_err() {
                    break;
                }
            }
            // Mux gone or client unwritable: unblock the ingress reader.
            let _ = egress_stream.shutdown_both();
        });
    let _ = std::thread::Builder::new()
        .name("loadpart-ingress".into())
        .spawn(move || {
            let mut reader = FrameReader::new(stream);
            loop {
                match reader.read_frame(None) {
                    Ok(bytes) => {
                        if to_mux.send(Frame::from_contiguous(bytes)).is_err() {
                            break;
                        }
                    }
                    Err(ProtocolError::Timeout) => {} // spurious; keep reading
                    Err(_) => break,
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::spawn_server;
    use lp_profiler::PredictionModels;
    use std::sync::OnceLock;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| crate::system::trained_models(150, 42))
    }

    fn tcp_server(k: f64) -> (SocketServer, TcpFrameChannel) {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), k);
        let sock = SocketServer::bind_tcp("127.0.0.1:0", server).expect("bind loopback");
        let chan = TcpFrameChannel::connect(sock.local_addr()).expect("connect");
        (sock, chan)
    }

    fn exchange<C: FrameChannel>(chan: &C, msg: &Message) -> Message {
        chan.send_split(msg.to_frame().expect("encodes"))
            .expect("send");
        let deadline = Instant::now() + Duration::from_secs(5);
        Message::decode_frame(chan.recv_split_deadline(deadline).expect("reply")).expect("decodes")
    }

    #[test]
    fn tcp_round_trip_load_query_and_probe() {
        let (sock, chan) = tcp_server(1.0);
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        assert_eq!(
            exchange(
                &chan,
                &Message::Probe {
                    payload: zero_payload(64 * 1024),
                }
            ),
            Message::ProbeAck
        );
        assert_eq!(sock.shutdown().expect("clean"), 0);
    }

    #[cfg(unix)]
    #[test]
    fn uds_round_trip_load_query() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("loadpart-uds-test-{}.sock", std::process::id()));
        let sock = SocketServer::bind_uds(&path, server).expect("bind uds");
        let chan = UdsFrameChannel::connect_path(&path).expect("connect");
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        assert_eq!(sock.shutdown().expect("clean"), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recv_deadline_times_out_without_desync() {
        let (sock, chan) = tcp_server(1.0);
        // Nothing in flight: a short deadline must report Timeout...
        let early = Instant::now() + Duration::from_millis(30);
        assert_eq!(
            chan.recv_split_deadline(early).unwrap_err(),
            ProtocolError::Timeout
        );
        // ...and the stream must still be usable for a real exchange.
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        sock.shutdown().expect("clean");
    }

    #[test]
    fn oversized_declared_length_is_refused_and_poisons() {
        let (sock, chan) = tcp_server(1.0);
        // Open a raw socket and declare an absurd frame length.
        let raw = TcpStream::connect(sock.local_addr()).expect("connect");
        let mut writer = raw.try_clone().expect("clone");
        writer
            .write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
            .expect("write");
        writer.flush().expect("flush");
        // The server-side reader drops the connection instead of
        // allocating; the well-behaved channel keeps working.
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        drop(raw);
        // Client-side: an oversized *send* is refused before any bytes hit
        // the wire.
        let over = Frame {
            header: Bytes::from(vec![0u8; 8]),
            payload: zero_payload(MAX_FRAME_BYTES as usize),
        };
        assert_eq!(
            chan.send_split(over).unwrap_err(),
            ProtocolError::Oversized(MAX_FRAME_BYTES as usize + 8)
        );
        // The refused send wrote nothing: the channel still round-trips.
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        sock.shutdown().expect("clean");
    }

    #[test]
    fn server_disconnect_is_reported() {
        let (sock, chan) = tcp_server(1.0);
        assert_eq!(sock.shutdown().expect("clean"), 0);
        // The egress bridge shuts the socket down once the mux is gone.
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut saw_disconnect = false;
        for _ in 0..50 {
            match chan.recv_split_deadline(deadline) {
                Err(ProtocolError::Disconnected) => {
                    saw_disconnect = true;
                    break;
                }
                Err(ProtocolError::Timeout) => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_disconnect, "a dead server must surface as Disconnected");
        // Poisoned: every further receive disconnects immediately.
        assert_eq!(
            chan.recv_split_deadline(Instant::now() + Duration::from_secs(1))
                .unwrap_err(),
            ProtocolError::Disconnected
        );
    }

    #[test]
    fn wall_clock_bandwidth_measurement_is_positive_and_finite() {
        let (sock, chan) = tcp_server(1.0);
        let mbps = measure_bandwidth(&chan, 256 * 1024, Duration::from_secs(5)).expect("measured");
        assert!(mbps.is_finite() && mbps > 0.0, "loopback measured {mbps}");
        sock.shutdown().expect("clean");
    }

    /// `send_split` writes `u32-le length ++ header ++ payload` without
    /// flattening: the exact wire bytes arrive at a raw peer.
    #[test]
    fn send_split_wire_format_is_length_prefixed_header_then_payload() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let chan = TcpFrameChannel::connect(addr).expect("connect");
        let (mut peer, _) = listener.accept().expect("accept");
        let frame = Message::Probe {
            payload: Bytes::from(vec![0xEE; 4096]),
        }
        .to_frame()
        .expect("encodes");
        let expected_len = frame.len();
        chan.send_split(frame.clone()).expect("send");
        let mut prefix = [0u8; 4];
        peer.read_exact(&mut prefix).expect("prefix");
        assert_eq!(u32::from_le_bytes(prefix) as usize, expected_len);
        let mut wire = vec![0u8; expected_len];
        peer.read_exact(&mut wire).expect("body");
        assert_eq!(&wire[..frame.header.len()], frame.header.as_ref());
        assert_eq!(&wire[frame.header.len()..], frame.payload.as_ref());
        // The bytes on the wire are exactly the contiguous encoding.
        assert_eq!(Bytes::from(wire), frame.flatten());
    }
}

//! The real-socket transport: the wire [`protocol`](crate::protocol) over
//! TCP and Unix-domain sockets, so server and clients run as separate OS
//! processes (`loadpart serve` / `loadpart smoke`).
//!
//! # Stream framing
//!
//! A [`Frame`]'s channel encoding is not self-delimiting on a byte stream,
//! so every frame is prefixed with its little-endian `u32` wire length:
//!
//! ```text
//! u32-le total_len ++ header bytes ++ payload bytes
//! ```
//!
//! [`SocketChannel::send_split`] writes the prefix, header and payload as
//! three sequential writes — the multi-MB tensor payload is never
//! flattened into a fresh contiguous buffer. Declared lengths above
//! [`MAX_FRAME_BYTES`] are refused with [`ProtocolError::Oversized`]
//! before any allocation, on both the send and receive side.
//!
//! # Deadline semantics
//!
//! [`FrameChannel::recv_deadline`] is implemented over `SO_RCVTIMEO`: each
//! read sets the socket read timeout to the remaining deadline budget. A
//! timeout mid-frame leaves the incremental `FrameReader` positioned
//! exactly where it stopped — the next `recv_deadline` resumes the same
//! frame, so a deadline never desyncs the stream. Only a genuinely broken
//! stream (EOF, I/O error, oversized declared length) poisons the reader,
//! after which every operation reports [`ProtocolError::Disconnected`].
//!
//! # Server side
//!
//! [`SocketServer`] owns a [`ServerHandle`] plus a small set of
//! *event-driven mux shards*. Each shard thread owns N accepted
//! connections end to end — their nonblocking sockets, the resumable
//! `FrameReader` per connection (so a partial frame survives
//! `WOULD_BLOCK` exactly as it survives a deadline), and a zero-copy
//! egress outbox — and parks in one `poll(2)` call over all of them plus
//! a wake pipe. Replies queued by the in-process mux (or its suffix
//! workers) fire the session's [`ReplyWaker`], which writes one byte to
//! the owning shard's wake pipe; the listener itself lives in shard 0's
//! poll set, so accepting costs no dedicated thread and no busy-poll
//! sleep. There are no per-connection threads to leak: shutdown joins
//! every shard. The mux loop, admission control, fault scripts and
//! telemetry are exactly the in-process server's — the socket layer is a
//! pure transport.

use crate::pool::zero_payload;
use crate::protocol::{Frame, Message, ProtocolError, MAX_PAYLOAD_BYTES};
use crate::threaded::{
    FrameChannel, ReplyWaker, ServerHandle, SessionConnector, SessionReceiver, SessionSender,
};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on one frame's declared wire length: the protocol's payload
/// cap plus generous room for the largest fixed-width header. A peer
/// declaring more is corrupt or hostile; the reader refuses to allocate.
pub const MAX_FRAME_BYTES: u32 = MAX_PAYLOAD_BYTES as u32 + 256;

/// The byte-stream sockets the framed channel can run over: `Read`/`Write`
/// plus the clone/timeout/shutdown surface `std::net` sockets share.
pub trait NetStream: Read + Write + Send + Sized + 'static {
    /// A second handle to the same socket (independent read/write halves).
    ///
    /// # Errors
    ///
    /// Propagates the OS error when the descriptor cannot be duplicated.
    fn try_clone_stream(&self) -> io::Result<Self>;

    /// Sets (or clears, with `None`) the socket read timeout.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Shuts down both directions, unblocking any reader.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn shutdown_both(&self) -> io::Result<()>;

    /// Switches the socket between blocking and nonblocking mode (the mux
    /// shards run every connection nonblocking).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()>;

    /// The raw descriptor, for the shard's readiness set.
    #[cfg(unix)]
    fn raw_fd_stream(&self) -> RawFd;
}

impl NetStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }

    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()> {
        self.set_nonblocking(nonblocking)
    }

    #[cfg(unix)]
    fn raw_fd_stream(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
impl NetStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn set_read_timeout_stream(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }

    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()> {
        self.set_nonblocking(nonblocking)
    }

    #[cfg(unix)]
    fn raw_fd_stream(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// Outcome of one [`FrameReader::step`] read attempt.
enum ReadStep {
    /// Bytes moved (or a spurious interrupt): call `step` again.
    Progress,
    /// A whole frame completed; reader reset for the next one.
    Complete(Bytes),
    /// The socket would block / timed out; partial state kept.
    Blocked,
    /// The stream is broken (reader poisoned) or the peer oversized.
    Failed(ProtocolError),
}

/// Incremental length-prefixed frame reader over a [`NetStream`].
///
/// Holds partial state across reads, so a deadline expiring mid-frame
/// (prefix half-read, body half-read) resumes cleanly on the next call
/// instead of desyncing the stream — and equally across `WOULD_BLOCK` on
/// the mux shards' nonblocking sockets ([`FrameReader::poll_frame`]).
struct FrameReader<S> {
    stream: S,
    /// The four length-prefix bytes being assembled.
    prefix: [u8; 4],
    prefix_got: usize,
    /// The frame body being assembled (sized once the prefix completes).
    body: Vec<u8>,
    body_got: usize,
    /// Set on EOF, I/O error or an oversized declared length: the stream
    /// position is no longer trustworthy, every later call disconnects.
    poisoned: bool,
}

impl<S: NetStream> FrameReader<S> {
    fn new(stream: S) -> Self {
        Self {
            stream,
            prefix: [0u8; 4],
            prefix_got: 0,
            body: Vec::new(),
            body_got: 0,
            poisoned: false,
        }
    }

    /// Reads one whole frame. `deadline: None` blocks until a frame, EOF
    /// or error; `Some` enforces it via the socket read timeout and
    /// returns [`ProtocolError::Timeout`] with the partial state kept.
    fn read_frame(&mut self, deadline: Option<Instant>) -> Result<Bytes, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::Disconnected);
        }
        loop {
            match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(ProtocolError::Timeout);
                    }
                    // A zero Duration means "no timeout" to the OS; clamp
                    // up so the deadline stays a deadline.
                    self.stream
                        .set_read_timeout_stream(Some(remaining.max(Duration::from_millis(1))))
                        .map_err(|_| self.poison())?;
                }
                None => self
                    .stream
                    .set_read_timeout_stream(None)
                    .map_err(|_| self.poison())?,
            }
            match self.step() {
                ReadStep::Progress => {}
                ReadStep::Complete(bytes) => return Ok(bytes),
                ReadStep::Blocked => return Err(ProtocolError::Timeout),
                ReadStep::Failed(err) => return Err(err),
            }
        }
    }

    /// Nonblocking read attempt for the event-driven mux: the stream must
    /// be in nonblocking mode. `Ok(Some(frame))` per completed frame,
    /// `Ok(None)` once the socket has no more bytes right now (partial
    /// prefix/body state kept for the next readiness event); EOF, I/O
    /// errors and oversized declared lengths poison exactly like
    /// [`FrameReader::read_frame`].
    fn poll_frame(&mut self) -> Result<Option<Bytes>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::Disconnected);
        }
        loop {
            match self.step() {
                ReadStep::Progress => {}
                ReadStep::Complete(bytes) => return Ok(Some(bytes)),
                ReadStep::Blocked => return Ok(None),
                ReadStep::Failed(err) => return Err(err),
            }
        }
    }

    /// One read attempt against the current prefix/body position.
    fn step(&mut self) -> ReadStep {
        if self.prefix_got < 4 {
            let got = self.prefix_got;
            return match self.stream.read(&mut self.prefix[got..]) {
                Ok(0) => ReadStep::Failed(self.poison()),
                Ok(n) => {
                    self.prefix_got += n;
                    if self.prefix_got == 4 {
                        let len = u32::from_le_bytes(self.prefix);
                        if len > MAX_FRAME_BYTES {
                            self.poisoned = true;
                            return ReadStep::Failed(ProtocolError::Oversized(len as usize));
                        }
                        self.body = vec![0u8; len as usize];
                        self.body_got = 0;
                    }
                    ReadStep::Progress
                }
                Err(e) => self.classify_step(e),
            };
        }
        if self.body_got < self.body.len() {
            let got = self.body_got;
            return match self.stream.read(&mut self.body[got..]) {
                Ok(0) => ReadStep::Failed(self.poison()),
                Ok(n) => {
                    self.body_got += n;
                    ReadStep::Progress
                }
                Err(e) => self.classify_step(e),
            };
        }
        // Frame complete: hand it off and reset for the next one.
        self.prefix_got = 0;
        self.body_got = 0;
        ReadStep::Complete(Bytes::from(std::mem::take(&mut self.body)))
    }

    fn classify_step(&mut self, e: io::Error) -> ReadStep {
        match self.classify(e) {
            Some(ProtocolError::Timeout) => ReadStep::Blocked,
            Some(err) => ReadStep::Failed(err),
            None => ReadStep::Progress,
        }
    }

    /// Marks the stream broken and returns the error to report.
    fn poison(&mut self) -> ProtocolError {
        self.poisoned = true;
        ProtocolError::Disconnected
    }

    /// Maps a read error: timeouts surface (state kept), interrupts retry
    /// (`None`), everything else poisons the stream.
    fn classify(&mut self, e: io::Error) -> Option<ProtocolError> {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Some(ProtocolError::Timeout),
            io::ErrorKind::Interrupted => None,
            _ => Some(self.poison()),
        }
    }
}

/// Writes one length-prefixed frame: prefix, header, payload — three
/// sequential writes, no flattening.
fn write_frame<S: NetStream>(stream: &mut S, frame: &Frame) -> Result<(), ProtocolError> {
    let total = frame.len();
    let len = u32::try_from(total)
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or(ProtocolError::Oversized(total))?;
    let io = |_: io::Error| ProtocolError::Disconnected;
    stream.write_all(&len.to_le_bytes()).map_err(io)?;
    stream.write_all(&frame.header).map_err(io)?;
    if !frame.payload.is_empty() {
        stream.write_all(&frame.payload).map_err(io)?;
    }
    stream.flush().map_err(io)
}

/// A [`FrameChannel`] over any [`NetStream`]: the client side of the
/// socket transport. Internally two halves of one socket — a locked
/// incremental reader and a locked writer — so the channel is `Sync` like
/// the in-process endpoints.
pub struct SocketChannel<S: NetStream> {
    reader: Mutex<FrameReader<S>>,
    writer: Mutex<S>,
}

/// The TCP incarnation of [`SocketChannel`].
pub type TcpFrameChannel = SocketChannel<TcpStream>;

/// The Unix-domain-socket incarnation of [`SocketChannel`].
#[cfg(unix)]
pub type UdsFrameChannel = SocketChannel<UnixStream>;

impl<S: NetStream> SocketChannel<S> {
    /// Wraps an already-connected stream.
    ///
    /// # Errors
    ///
    /// Propagates the OS error when the socket cannot be duplicated into
    /// read/write halves.
    pub fn from_stream(stream: S) -> io::Result<Self> {
        let writer = stream.try_clone_stream()?;
        Ok(Self {
            reader: Mutex::new(FrameReader::new(stream)),
            writer: Mutex::new(writer),
        })
    }
}

impl TcpFrameChannel {
    /// Connects to a `loadpart serve` (or [`SocketServer`]) TCP endpoint.
    /// Nagle's algorithm is disabled: the protocol is request/response and
    /// a 40 ms delayed-ACK stall would dwarf every deadline in the suite.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::from_stream(stream)
    }
}

#[cfg(unix)]
impl UdsFrameChannel {
    /// Connects to a Unix-domain-socket endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_path<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        Self::from_stream(UnixStream::connect(path)?)
    }
}

impl<S: NetStream> FrameChannel for SocketChannel<S> {
    fn send(&self, frame: Bytes) -> Result<(), ProtocolError> {
        self.send_split(Frame::from_contiguous(frame))
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<Bytes, ProtocolError> {
        self.reader
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .read_frame(Some(deadline))
    }

    fn send_split(&self, frame: Frame) -> Result<(), ProtocolError> {
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        write_frame(&mut *writer, &frame)
    }
}

/// Measures round-trip goodput over any [`FrameChannel`] by wall-clock
/// timing one probe exchange of `probe_bytes`, in Mbps.
///
/// Unlike the simulated-link profiler this measures *real* elapsed time,
/// which can collapse to ~zero on a loopback socket — yielding absurd or
/// even infinite rates. Feed the result to
/// `BandwidthEstimator::record`, which rejects non-finite and
/// non-positive samples at the door.
///
/// # Errors
///
/// Propagates [`ProtocolError`] from the exchange; a reply that is not a
/// probe acknowledgement surfaces as [`ProtocolError::Unexpected`].
pub fn measure_bandwidth<C: FrameChannel + ?Sized>(
    channel: &C,
    probe_bytes: usize,
    timeout: Duration,
) -> Result<f64, ProtocolError> {
    let frame = Message::Probe {
        payload: zero_payload(probe_bytes),
    }
    .to_frame()?;
    let start = Instant::now();
    channel.send_split(frame)?;
    let deadline = start + timeout;
    loop {
        match Message::decode_frame(channel.recv_split_deadline(deadline)?)? {
            Message::ProbeAck => break,
            // Stale survivors of an earlier timed-out exchange: skip.
            Message::OffloadResponse { .. }
            | Message::LoadReply { .. }
            | Message::Rejected { .. } => continue,
            other => return Err(ProtocolError::Unexpected(other.tag())),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    if elapsed <= 0.0 {
        return Ok(f64::INFINITY); // the estimator guard rejects this
    }
    Ok(probe_bytes as f64 * 8.0 / (elapsed * 1e6))
}

/// Anything the mux's accepting shard can listen on.
trait FrameListener: Send + 'static {
    type Stream: NetStream;

    /// One non-blocking accept attempt. The returned stream is left in
    /// nonblocking mode — the mux shards are event-driven.
    fn accept_stream(&self) -> io::Result<Self::Stream>;

    /// The raw descriptor, so the listener joins shard 0's readiness set.
    #[cfg(unix)]
    fn raw_fd_listener(&self) -> RawFd;
}

impl FrameListener for TcpListener {
    type Stream = TcpStream;

    fn accept_stream(&self) -> io::Result<TcpStream> {
        let (stream, _) = self.accept()?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    }

    #[cfg(unix)]
    fn raw_fd_listener(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
impl FrameListener for UnixListener {
    type Stream = UnixStream;

    fn accept_stream(&self) -> io::Result<UnixStream> {
        let (stream, _) = self.accept()?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    }

    #[cfg(unix)]
    fn raw_fd_listener(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// Minimal hand-declared `poll(2)` binding for the shard readiness loop.
/// The crate is otherwise `deny(unsafe_code)`; this module is the single,
/// narrowly scoped exception — std exposes no readiness API and the
/// workspace links no external crates.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_ulong};
    use std::os::unix::io::RawFd;

    /// Layout-identical to the C library's `struct pollfd` on Linux
    /// (glibc and musl agree).
    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    impl PollFd {
        pub fn readable(fd: RawFd) -> Self {
            Self {
                fd,
                events: POLLIN,
                revents: 0,
            }
        }
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks until some descriptor is ready or `timeout_ms` passes.
    ///
    /// # Errors
    ///
    /// The OS error (including `EINTR`) when the call fails.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `PollFd` — `#[repr(C)]` and layout-identical to `struct
        // pollfd` — `nfds` is its exact length, and the kernel writes
        // only the `revents` fields within the slice.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// Upper bound on one readiness wait: the backstop under which a shard
/// re-checks its stop flag and mux liveness even with no socket events.
#[cfg(target_os = "linux")]
const POLL_BACKSTOP_MS: i32 = 200;

/// Nap between scans on platforms without the `poll(2)` binding: the
/// portable fallback trades a little latency and idle CPU for zero FFI.
#[cfg(not(target_os = "linux"))]
const FALLBACK_NAP: Duration = Duration::from_millis(2);

/// The shard wake signal: a nonblocking socketpair whose read end sits in
/// the shard's readiness set. Writers — session [`ReplyWaker`]s, the
/// accepting shard announcing a dealt connection, shutdown — push one
/// byte each; a full pipe means a wake is already pending, which is just
/// as good.
#[cfg(unix)]
struct WakePipe {
    rx: UnixStream,
    tx: WakeHandle,
}

#[cfg(unix)]
impl WakePipe {
    fn new() -> io::Result<Self> {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok(Self {
            rx,
            tx: WakeHandle(Arc::new(tx)),
        })
    }

    fn handle(&self) -> WakeHandle {
        self.tx.clone()
    }

    /// Swallows every pending wake byte (level-triggered reset).
    fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    #[cfg(target_os = "linux")]
    fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

/// Clonable writer half of a [`WakePipe`].
#[cfg(unix)]
#[derive(Clone)]
struct WakeHandle(Arc<UnixStream>);

#[cfg(unix)]
impl WakeHandle {
    fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// Portable stand-in where no socketpair exists: the fallback readiness
/// loop naps instead of blocking, so a flag suffices.
#[cfg(not(unix))]
#[derive(Clone)]
struct WakeHandle(Arc<AtomicBool>);

#[cfg(not(unix))]
struct WakePipe(WakeHandle);

#[cfg(not(unix))]
impl WakePipe {
    fn new() -> io::Result<Self> {
        Ok(Self(WakeHandle(Arc::new(AtomicBool::new(false)))))
    }

    fn handle(&self) -> WakeHandle {
        self.0.clone()
    }

    fn drain(&self) {
        self.0 .0.store(false, Ordering::SeqCst);
    }
}

#[cfg(not(unix))]
impl WakeHandle {
    fn wake(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// One connection owned by a mux shard: the nonblocking socket behind a
/// resumable [`FrameReader`], its mux session halves, and the zero-copy
/// egress outbox.
struct ShardConn<S: NetStream> {
    reader: FrameReader<S>,
    writer: S,
    to_mux: SessionSender,
    from_mux: SessionReceiver,
    /// Egress queue: per reply, `u32-le len ++ header` as one small owned
    /// segment and the payload as a refcount bump — a multi-MB tensor is
    /// never flattened. `offset` tracks how much of the front segment a
    /// partial write already pushed out.
    outbox: VecDeque<Bytes>,
    offset: usize,
    #[cfg(unix)]
    fd: RawFd,
    /// The readiness wait saw (or presumes) ingress bytes pending.
    readable: bool,
    /// The session's reply channel disconnected: the server mux exited.
    mux_gone: bool,
    /// The socket is broken (EOF, I/O error, oversized declaration).
    dead: bool,
}

impl<S: NetStream> ShardConn<S> {
    fn new(stream: S, connector: &SessionConnector, wake: WakeHandle) -> io::Result<Self> {
        let writer = stream.try_clone_stream()?;
        #[cfg(unix)]
        let fd = stream.raw_fd_stream();
        let waker: ReplyWaker = Arc::new(move || wake.wake());
        let (to_mux, from_mux) = connector.connect_with_waker(Some(waker)).split();
        Ok(Self {
            reader: FrameReader::new(stream),
            writer,
            to_mux,
            from_mux,
            outbox: VecDeque::new(),
            offset: 0,
            #[cfg(unix)]
            fd,
            readable: true,
            mux_gone: false,
            dead: false,
        })
    }

    /// One service round: move queued replies into the outbox, push the
    /// outbox at the socket, then pump ingress frames into the mux if the
    /// readiness wait flagged this connection.
    fn pump(&mut self) {
        if !self.mux_gone {
            loop {
                match self.from_mux.try_recv() {
                    Ok(Some(frame)) => self.enqueue(&frame),
                    Ok(None) => break,
                    Err(_) => {
                        self.mux_gone = true;
                        break;
                    }
                }
            }
        }
        self.flush();
        if self.readable {
            self.readable = false;
            while !self.dead && !self.mux_gone {
                match self.reader.poll_frame() {
                    Ok(Some(bytes)) => {
                        if self.to_mux.send(Frame::from_contiguous(bytes)).is_err() {
                            self.mux_gone = true;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => self.dead = true,
                }
            }
        }
    }

    /// Splits one reply frame into outbox segments. Server replies stay
    /// far under the frame cap; one that somehow overflowed is dropped
    /// rather than desyncing the stream mid-frame.
    fn enqueue(&mut self, frame: &Frame) {
        let total = frame.len();
        let Some(len) = u32::try_from(total).ok().filter(|&l| l <= MAX_FRAME_BYTES) else {
            return;
        };
        let mut head = Vec::with_capacity(4 + frame.header.len());
        head.extend_from_slice(&len.to_le_bytes());
        head.extend_from_slice(&frame.header);
        self.outbox.push_back(Bytes::from(head));
        if !frame.payload.is_empty() {
            self.outbox.push_back(frame.payload.clone());
        }
    }

    /// Writes outbox segments until done or the socket would block.
    fn flush(&mut self) {
        while let Some(front) = self.outbox.front() {
            if self.offset >= front.len() {
                self.outbox.pop_front();
                self.offset = 0;
                continue;
            }
            match self.writer.write(&front[self.offset..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.offset += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Whether the shard should reap this connection: broken socket, or
    /// server gone with nothing left to deliver.
    fn finished(&self) -> bool {
        self.dead || (self.mux_gone && self.outbox.is_empty())
    }

    /// Closes the socket (clients see EOF, not a hang) and tells the mux
    /// to drop the session's reply route.
    fn close(&mut self) {
        let _ = self.writer.shutdown_both();
        self.to_mux.close();
    }
}

/// Shard 0's extra duty: the listener plus the deal-out table that
/// round-robins accepted connections across every shard.
struct AcceptRole<L: FrameListener> {
    listener: L,
    connector: SessionConnector,
    routes: Vec<(Sender<ShardConn<L::Stream>>, WakeHandle)>,
    next: usize,
}

impl<L: FrameListener> AcceptRole<L> {
    /// Accepts every pending connection (the listener is level-triggered
    /// in the shard's readiness set, so a burst costs one loop pass).
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept_stream() {
                Ok(stream) => {
                    let (tx, wake) = &self.routes[self.next % self.routes.len()];
                    self.next = self.next.wrapping_add(1);
                    let Ok(conn) = ShardConn::new(stream, &self.connector, wake.clone()) else {
                        continue; // the peer is already gone
                    };
                    if tx.send(conn).is_ok() {
                        wake.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break, // listener broken: nothing more to accept
            }
        }
    }
}

/// One event-driven mux shard: the readiness loop over its connections,
/// its wake pipe, and (shard 0 only) the listener.
struct MuxShard<L: FrameListener> {
    stop: Arc<AtomicBool>,
    wake: WakePipe,
    intake: Receiver<ShardConn<L::Stream>>,
    conns: Vec<ShardConn<L::Stream>>,
    acceptor: Option<AcceptRole<L>>,
}

impl<L: FrameListener> MuxShard<L> {
    fn run(mut self) {
        loop {
            let stopping = self.stop.load(Ordering::SeqCst);
            self.wake.drain();
            while let Ok(conn) = self.intake.try_recv() {
                self.conns.push(conn);
            }
            if !stopping {
                if let Some(role) = self.acceptor.as_mut() {
                    role.accept_burst();
                }
            }
            for conn in &mut self.conns {
                conn.pump();
            }
            self.conns.retain_mut(|conn| {
                if conn.finished() {
                    conn.close();
                    false
                } else {
                    true
                }
            });
            if stopping {
                break;
            }
            self.wait_ready();
        }
        // Final drain (best effort): replies the server mux queued before
        // exiting still reach the wire, then every socket closes so
        // clients observe EOF instead of a dangling half-open stream.
        for conn in &mut self.conns {
            conn.pump();
            conn.close();
        }
    }

    /// Parks in `poll(2)` over the wake pipe, the listener (shard 0) and
    /// every connection — `POLLOUT` only where an outbox has backlog —
    /// then flags the connections whose sockets fired.
    #[cfg(target_os = "linux")]
    fn wait_ready(&mut self) {
        let mut fds = Vec::with_capacity(self.conns.len() + 2);
        fds.push(sys::PollFd::readable(self.wake.fd()));
        if let Some(role) = &self.acceptor {
            fds.push(sys::PollFd::readable(role.listener.raw_fd_listener()));
        }
        let base = fds.len();
        for conn in &self.conns {
            let mut slot = sys::PollFd::readable(conn.fd);
            if !conn.outbox.is_empty() {
                slot.events |= sys::POLLOUT;
            }
            fds.push(slot);
        }
        match sys::poll_fds(&mut fds, POLL_BACKSTOP_MS) {
            Ok(_) => {
                for (conn, slot) in self.conns.iter_mut().zip(&fds[base..]) {
                    if slot.revents != 0 {
                        conn.readable = true;
                    }
                }
            }
            Err(_) => {
                // EINTR or a poll failure: presume everything is ready —
                // nonblocking reads make a wrong guess cheap.
                for conn in &mut self.conns {
                    conn.readable = true;
                }
            }
        }
    }

    /// Portable fallback: nap briefly and try every connection.
    #[cfg(not(target_os = "linux"))]
    fn wait_ready(&mut self) {
        for conn in &mut self.conns {
            conn.readable = true;
        }
        std::thread::sleep(FALLBACK_NAP);
    }
}

/// Exposes a running threaded server over a real socket: owns the
/// [`ServerHandle`] and the event-driven mux shards that service every
/// accepted connection (no per-connection threads).
///
/// Dropping the server (without [`SocketServer::wait`] /
/// [`SocketServer::shutdown`]) joins the shards and shuts the mux down,
/// like dropping a bare [`ServerHandle`].
pub struct SocketServer {
    server: Option<ServerHandle>,
    addr: String,
    stop: Arc<AtomicBool>,
    wakers: Vec<WakeHandle>,
    shards: Vec<JoinHandle<()>>,
}

/// Default mux shard count: spread connection I/O across a few cores
/// without a thread per core — per-connection work is cheap next to
/// suffix execution, which has its own worker pool.
#[must_use]
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().clamp(1, 4))
}

impl std::fmt::Debug for SocketServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl SocketServer {
    /// Binds `server` to a TCP address (`"127.0.0.1:0"` picks a free
    /// port; read it back from [`SocketServer::local_addr`]) with
    /// [`default_shards`] mux shards.
    ///
    /// # Errors
    ///
    /// Propagates bind and shard-spawn failures.
    pub fn bind_tcp<A: ToSocketAddrs>(addr: A, server: ServerHandle) -> io::Result<Self> {
        Self::bind_tcp_sharded(addr, server, default_shards())
    }

    /// [`SocketServer::bind_tcp`] with an explicit mux shard count
    /// (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates bind and shard-spawn failures.
    pub fn bind_tcp_sharded<A: ToSocketAddrs>(
        addr: A,
        server: ServerHandle,
        shards: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        Self::start(listener, local, server, shards)
    }

    /// Binds `server` to a Unix-domain socket path, replacing any stale
    /// socket file left by a previous run, with [`default_shards`] mux
    /// shards.
    ///
    /// # Errors
    ///
    /// Propagates bind and shard-spawn failures.
    #[cfg(unix)]
    pub fn bind_uds<P: AsRef<std::path::Path>>(path: P, server: ServerHandle) -> io::Result<Self> {
        Self::bind_uds_sharded(path, server, default_shards())
    }

    /// [`SocketServer::bind_uds`] with an explicit mux shard count
    /// (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates bind and shard-spawn failures.
    #[cfg(unix)]
    pub fn bind_uds_sharded<P: AsRef<std::path::Path>>(
        path: P,
        server: ServerHandle,
        shards: usize,
    ) -> io::Result<Self> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let local = path.display().to_string();
        listener.set_nonblocking(true)?;
        Self::start(listener, local, server, shards)
    }

    /// Spawns the mux shards. Unlike the old acceptor this *returns* a
    /// spawn failure instead of panicking — and rolls already-started
    /// shards back down first, so no thread outlives a failed
    /// constructor.
    fn start<L: FrameListener>(
        listener: L,
        addr: String,
        server: ServerHandle,
        shards: usize,
    ) -> io::Result<Self> {
        let shards = shards.max(1);
        let connector = server.connector();
        let stop = Arc::new(AtomicBool::new(false));
        let mut routes = Vec::with_capacity(shards);
        let mut parts = Vec::with_capacity(shards);
        for _ in 0..shards {
            let pipe = WakePipe::new()?;
            let (tx, rx) = channel::<ShardConn<L::Stream>>();
            routes.push((tx, pipe.handle()));
            parts.push((pipe, rx));
        }
        let wakers: Vec<WakeHandle> = routes.iter().map(|(_, wake)| wake.clone()).collect();
        let mut listener = Some(listener);
        let mut joins: Vec<JoinHandle<()>> = Vec::with_capacity(shards);
        for (index, (wake, intake)) in parts.into_iter().enumerate() {
            let acceptor = listener.take().map(|listener| AcceptRole {
                listener,
                connector: connector.clone(),
                routes: routes.clone(),
                next: 0,
            });
            let shard = MuxShard {
                stop: Arc::clone(&stop),
                wake,
                intake,
                conns: Vec::new(),
                acceptor,
            };
            match std::thread::Builder::new()
                .name(format!("loadpart-mux-{index}"))
                .spawn(move || shard.run())
            {
                Ok(join) => joins.push(join),
                Err(e) => {
                    stop.store(true, Ordering::SeqCst);
                    for waker in &wakers {
                        waker.wake();
                    }
                    for join in joins {
                        let _ = join.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            server: Some(server),
            addr,
            stop,
            wakers,
            shards: joins,
        })
    }

    /// The bound address: `host:port` for TCP, the socket path for UDS.
    #[must_use]
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Blocks until a client shuts the server down over the wire
    /// ([`Message::Shutdown`]), then returns the served-offload count.
    /// The mux shards are stopped and joined afterwards — their final
    /// drain pushes any replies queued before the shutdown, then closes
    /// every client socket.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ServerPanicked`] when the server thread panicked.
    pub fn wait(mut self) -> Result<u64, ProtocolError> {
        let served = self.server.take().expect("not yet joined").wait();
        self.stop_shards();
        served
    }

    /// Shuts the server down from this process and returns the
    /// served-offload count, like [`ServerHandle::shutdown`]. Stops and
    /// joins every mux shard.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ServerPanicked`] when the server thread panicked.
    pub fn shutdown(mut self) -> Result<u64, ProtocolError> {
        let served = self.server.take().expect("not yet joined").shutdown();
        self.stop_shards();
        served
    }

    fn stop_shards(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for join in self.shards.drain(..) {
            let _ = join.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_shards();
        // A remaining ServerHandle shuts the mux down on its own drop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::spawn_server;
    use lp_profiler::PredictionModels;
    use std::sync::OnceLock;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| crate::system::trained_models(150, 42))
    }

    fn tcp_server(k: f64) -> (SocketServer, TcpFrameChannel) {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), k);
        let sock = SocketServer::bind_tcp("127.0.0.1:0", server).expect("bind loopback");
        let chan = TcpFrameChannel::connect(sock.local_addr()).expect("connect");
        (sock, chan)
    }

    fn exchange<C: FrameChannel>(chan: &C, msg: &Message) -> Message {
        chan.send_split(msg.to_frame().expect("encodes"))
            .expect("send");
        let deadline = Instant::now() + Duration::from_secs(5);
        Message::decode_frame(chan.recv_split_deadline(deadline).expect("reply")).expect("decodes")
    }

    #[test]
    fn tcp_round_trip_load_query_and_probe() {
        let (sock, chan) = tcp_server(1.0);
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        assert_eq!(
            exchange(
                &chan,
                &Message::Probe {
                    payload: zero_payload(64 * 1024),
                }
            ),
            Message::ProbeAck
        );
        assert_eq!(sock.shutdown().expect("clean"), 0);
    }

    #[cfg(unix)]
    #[test]
    fn uds_round_trip_load_query() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("loadpart-uds-test-{}.sock", std::process::id()));
        let sock = SocketServer::bind_uds(&path, server).expect("bind uds");
        let chan = UdsFrameChannel::connect_path(&path).expect("connect");
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        assert_eq!(sock.shutdown().expect("clean"), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recv_deadline_times_out_without_desync() {
        let (sock, chan) = tcp_server(1.0);
        // Nothing in flight: a short deadline must report Timeout...
        let early = Instant::now() + Duration::from_millis(30);
        assert_eq!(
            chan.recv_split_deadline(early).unwrap_err(),
            ProtocolError::Timeout
        );
        // ...and the stream must still be usable for a real exchange.
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        sock.shutdown().expect("clean");
    }

    #[test]
    fn oversized_declared_length_is_refused_and_poisons() {
        let (sock, chan) = tcp_server(1.0);
        // Open a raw socket and declare an absurd frame length.
        let raw = TcpStream::connect(sock.local_addr()).expect("connect");
        let mut writer = raw.try_clone().expect("clone");
        writer
            .write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
            .expect("write");
        writer.flush().expect("flush");
        // The server-side reader drops the connection instead of
        // allocating; the well-behaved channel keeps working.
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        drop(raw);
        // Client-side: an oversized *send* is refused before any bytes hit
        // the wire.
        let over = Frame {
            header: Bytes::from(vec![0u8; 8]),
            payload: zero_payload(MAX_FRAME_BYTES as usize),
        };
        assert_eq!(
            chan.send_split(over).unwrap_err(),
            ProtocolError::Oversized(MAX_FRAME_BYTES as usize + 8)
        );
        // The refused send wrote nothing: the channel still round-trips.
        assert!(matches!(
            exchange(&chan, &Message::LoadQuery),
            Message::LoadReply { .. }
        ));
        sock.shutdown().expect("clean");
    }

    #[test]
    fn server_disconnect_is_reported() {
        let (sock, chan) = tcp_server(1.0);
        assert_eq!(sock.shutdown().expect("clean"), 0);
        // The egress bridge shuts the socket down once the mux is gone.
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut saw_disconnect = false;
        for _ in 0..50 {
            match chan.recv_split_deadline(deadline) {
                Err(ProtocolError::Disconnected) => {
                    saw_disconnect = true;
                    break;
                }
                Err(ProtocolError::Timeout) => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_disconnect, "a dead server must surface as Disconnected");
        // Poisoned: every further receive disconnects immediately.
        assert_eq!(
            chan.recv_split_deadline(Instant::now() + Duration::from_secs(1))
                .unwrap_err(),
            ProtocolError::Disconnected
        );
    }

    #[test]
    fn wall_clock_bandwidth_measurement_is_positive_and_finite() {
        let (sock, chan) = tcp_server(1.0);
        let mbps = measure_bandwidth(&chan, 256 * 1024, Duration::from_secs(5)).expect("measured");
        assert!(mbps.is_finite() && mbps > 0.0, "loopback measured {mbps}");
        sock.shutdown().expect("clean");
    }

    /// `send_split` writes `u32-le length ++ header ++ payload` without
    /// flattening: the exact wire bytes arrive at a raw peer.
    #[test]
    fn send_split_wire_format_is_length_prefixed_header_then_payload() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let chan = TcpFrameChannel::connect(addr).expect("connect");
        let (mut peer, _) = listener.accept().expect("accept");
        let frame = Message::Probe {
            payload: Bytes::from(vec![0xEE; 4096]),
        }
        .to_frame()
        .expect("encodes");
        let expected_len = frame.len();
        chan.send_split(frame.clone()).expect("send");
        let mut prefix = [0u8; 4];
        peer.read_exact(&mut prefix).expect("prefix");
        assert_eq!(u32::from_le_bytes(prefix) as usize, expected_len);
        let mut wire = vec![0u8; expected_len];
        peer.read_exact(&mut wire).expect("body");
        assert_eq!(&wire[..frame.header.len()], frame.header.as_ref());
        assert_eq!(&wire[frame.header.len()..], frame.payload.as_ref());
        // The bytes on the wire are exactly the contiguous encoding.
        assert_eq!(Bytes::from(wire), frame.flatten());
    }
}

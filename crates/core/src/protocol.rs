//! The device ↔ edge-server wire protocol (§III-A, §IV).
//!
//! After the device executes `L_1..L_p` it ships the intermediate tensors
//! *together with the partition point* so the server can fetch (or build)
//! the matching suffix graph from its own partition cache. The runtime
//! profiler's probe packets and the periodic load-factor query ride the
//! same connection.
//!
//! The encoding is a compact little-endian tag-length-value format over
//! [`bytes`]; payloads are byte blobs (this reproduction moves simulated
//! tensors, so payload *sizes* are what matter, but the framing is real and
//! round-trips byte-exactly).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use lp_graph::Precision;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Protocol version carried in every frame. Version 2 added the
/// upload-tensor precision byte to [`Message::OffloadRequest`] (the frame
/// layout changed, so version-1 peers fail safe with
/// [`ProtocolError::BadVersion`] instead of misparsing).
pub const PROTOCOL_VERSION: u8 = 2;

/// Hard cap on one message's payload blob. Anything larger is refused at
/// encode time with [`ProtocolError::Oversized`] — well before the
/// historical `len as u32` cast could silently truncate the declared
/// length on the wire — and the socket transport refuses declared frame
/// lengths beyond it instead of allocating attacker-controlled buffers.
pub const MAX_PAYLOAD_BYTES: usize = 64 * 1024 * 1024;

/// Process-wide count of payload bytes memcpy'd by the framing layer
/// (contiguous [`Message::encode`] and [`Frame::flatten`]). The zero-copy
/// [`Frame`] path never touches it; the serving benchmark reads the delta
/// across a run to report "bytes copied" per mode.
static FRAMING_BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

/// Total payload bytes the framing layer has copied so far in this process.
#[must_use]
pub fn framing_bytes_copied() -> u64 {
    FRAMING_BYTES_COPIED.load(Ordering::Relaxed)
}

fn count_copied(n: usize) {
    FRAMING_BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
}

/// A wire frame as a header/payload chain.
///
/// The on-the-wire bytes are `header ++ payload`; keeping the two segments
/// separate lets a multi-MB tensor payload ride through the transport as an
/// `Arc` reference-count bump instead of a memcpy. [`Frame::flatten`]
/// recovers the contiguous encoding (and is the compatibility bridge for
/// [`FrameChannel`](crate::FrameChannel) implementations that only speak
/// contiguous [`Bytes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Version byte, tag byte and the fixed-width fields, including the
    /// payload length prefix.
    pub header: Bytes,
    /// The payload blob (empty for integer-only messages).
    pub payload: Bytes,
}

impl Frame {
    /// Wraps an already-contiguous encoded frame (empty payload segment).
    #[must_use]
    pub fn from_contiguous(bytes: Bytes) -> Self {
        Frame {
            header: bytes,
            payload: Bytes::new(),
        }
    }

    /// Total wire length of the frame.
    #[must_use]
    pub fn len(&self) -> usize {
        self.header.len() + self.payload.len()
    }

    /// Whether the frame carries no bytes at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.header.is_empty() && self.payload.is_empty()
    }

    /// Recovers the contiguous wire encoding. Free when the payload segment
    /// is empty; otherwise both segments are memcpy'd into one buffer (and
    /// counted in [`framing_bytes_copied`]).
    #[must_use]
    pub fn flatten(self) -> Bytes {
        if self.payload.is_empty() {
            return self.header;
        }
        count_copied(self.header.len() + self.payload.len());
        let mut b = BytesMut::with_capacity(self.len());
        b.put_slice(&self.header);
        b.put_slice(&self.payload);
        b.freeze()
    }
}

const TAG_OFFLOAD_REQUEST: u8 = 1;
const TAG_OFFLOAD_RESPONSE: u8 = 2;
const TAG_LOAD_QUERY: u8 = 3;
const TAG_LOAD_REPLY: u8 = 4;
const TAG_PROBE: u8 = 5;
const TAG_PROBE_ACK: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_REJECTED: u8 = 8;

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Device -> server: partition point plus the crossing tensors.
    OffloadRequest {
        /// Client-chosen request id, echoed in the response.
        request_id: u64,
        /// The partition point `p`, so the server can partition/cache.
        partition_point: u32,
        /// Upload-tensor precision, so the server dequantizes at the
        /// negotiated width (one byte on the wire, [`Precision::wire`]).
        precision: Precision,
        /// The packed intermediate tensors (MakeTuple output).
        payload: Bytes,
    },
    /// Server -> device: the inference result.
    OffloadResponse {
        /// Echoed request id.
        request_id: u64,
        /// Observed server-side execution time in microseconds (fed to the
        /// device's records; the server's own tracker also sees it).
        server_time_us: u64,
        /// The result tensor.
        payload: Bytes,
    },
    /// Device -> server: "what is your current load factor?" (periodic).
    LoadQuery,
    /// Server -> device: the most recent `k`.
    LoadReply {
        /// Load influence factor, `k >= 1`, transported as micro-units to
        /// keep the frame integer-only.
        k_micro: u64,
    },
    /// Device -> server: bandwidth probe of the given size.
    Probe {
        /// Probe payload (size matters, contents do not).
        payload: Bytes,
    },
    /// Server -> device: probe acknowledgement.
    ProbeAck,
    /// Device -> server: end of session.
    Shutdown,
    /// Server -> device: admission control shed this request — the
    /// pending-work budget is exhausted, run the suffix locally.
    Rejected {
        /// Echoed request id.
        request_id: u64,
        /// Predicted time until the server's backlog drains, in
        /// microseconds; a hint for when offloading is worth retrying.
        retry_after_us: u64,
        /// The server's current load factor, piggybacked so the client's
        /// profile is load-aware immediately (micro-units, like
        /// [`Message::LoadReply`]).
        k_micro: u64,
    },
}

impl Message {
    /// The exact wire length of the fixed-width part of this message:
    /// version, tag and integer fields, including any payload length
    /// prefix — everything except the payload blob itself.
    #[must_use]
    fn header_len(&self) -> usize {
        2 + match self {
            Message::OffloadRequest { .. } => 8 + 4 + 1 + 4,
            Message::OffloadResponse { .. } => 8 + 8 + 4,
            Message::LoadQuery | Message::ProbeAck | Message::Shutdown => 0,
            Message::LoadReply { .. } => 8,
            Message::Probe { .. } => 4,
            Message::Rejected { .. } => 8 + 8 + 8,
        }
    }

    /// The payload blob this message carries, if any.
    fn payload(&self) -> Option<&Bytes> {
        match self {
            Message::OffloadRequest { payload, .. }
            | Message::OffloadResponse { payload, .. }
            | Message::Probe { payload } => Some(payload),
            _ => None,
        }
    }

    /// The payload's wire length as the `u32` length prefix, refusing
    /// anything past [`MAX_PAYLOAD_BYTES`] — which also makes the `u32`
    /// conversion checked instead of a silently-truncating `as` cast.
    fn payload_len_prefix(payload: &Bytes) -> Result<u32, ProtocolError> {
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(ProtocolError::Oversized(payload.len()));
        }
        u32::try_from(payload.len()).map_err(|_| ProtocolError::Oversized(payload.len()))
    }

    /// Encodes the fixed-width part of the message (everything except the
    /// payload blob) into `b`.
    fn encode_header(&self, b: &mut BytesMut) -> Result<(), ProtocolError> {
        b.put_u8(PROTOCOL_VERSION);
        match self {
            Message::OffloadRequest {
                request_id,
                partition_point,
                precision,
                payload,
            } => {
                let len = Self::payload_len_prefix(payload)?;
                b.put_u8(TAG_OFFLOAD_REQUEST);
                b.put_u64_le(*request_id);
                b.put_u32_le(*partition_point);
                b.put_u8(precision.wire());
                b.put_u32_le(len);
            }
            Message::OffloadResponse {
                request_id,
                server_time_us,
                payload,
            } => {
                let len = Self::payload_len_prefix(payload)?;
                b.put_u8(TAG_OFFLOAD_RESPONSE);
                b.put_u64_le(*request_id);
                b.put_u64_le(*server_time_us);
                b.put_u32_le(len);
            }
            Message::LoadQuery => b.put_u8(TAG_LOAD_QUERY),
            Message::LoadReply { k_micro } => {
                b.put_u8(TAG_LOAD_REPLY);
                b.put_u64_le(*k_micro);
            }
            Message::Probe { payload } => {
                let len = Self::payload_len_prefix(payload)?;
                b.put_u8(TAG_PROBE);
                b.put_u32_le(len);
            }
            Message::ProbeAck => b.put_u8(TAG_PROBE_ACK),
            Message::Shutdown => b.put_u8(TAG_SHUTDOWN),
            Message::Rejected {
                request_id,
                retry_after_us,
                k_micro,
            } => {
                b.put_u8(TAG_REJECTED);
                b.put_u64_le(*request_id);
                b.put_u64_le(*retry_after_us);
                b.put_u64_le(*k_micro);
            }
        }
        Ok(())
    }

    /// Encodes the message into one contiguous self-delimiting frame.
    ///
    /// The payload blob is memcpy'd into the buffer (counted in
    /// [`framing_bytes_copied`]); the hot serving path uses
    /// [`Message::to_frame`] instead, which shares it by reference.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Oversized`] when the payload blob exceeds
    /// [`MAX_PAYLOAD_BYTES`] and its length cannot be declared honestly.
    pub fn encode(&self) -> Result<Bytes, ProtocolError> {
        let payload_len = self.payload().map_or(0, Bytes::len);
        let mut b = BytesMut::with_capacity(self.header_len() + payload_len);
        self.encode_header(&mut b)?;
        if let Some(payload) = self.payload() {
            count_copied(payload.len());
            b.put_slice(payload);
        }
        Ok(b.freeze())
    }

    /// Encodes the message as a header/payload [`Frame`]: the fixed-width
    /// fields are serialized into a fresh (small) header buffer and the
    /// payload blob is shared by `Arc` reference — zero copies of tensor
    /// bytes. `frame.flatten()` equals [`Message::encode`] byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Oversized`] when the payload blob exceeds
    /// [`MAX_PAYLOAD_BYTES`] and its length cannot be declared honestly.
    pub fn to_frame(&self) -> Result<Frame, ProtocolError> {
        let mut b = BytesMut::with_capacity(self.header_len());
        self.encode_header(&mut b)?;
        Ok(Frame {
            header: b.freeze(),
            payload: self.payload().cloned().unwrap_or_default(),
        })
    }

    /// Decodes a header/payload [`Frame`], keeping the payload segment
    /// zero-copy when the header's declared length matches it exactly.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] exactly as [`Message::decode`] would for
    /// the flattened frame.
    pub fn decode_frame(frame: Frame) -> Result<Message, ProtocolError> {
        if frame.payload.is_empty() {
            return Message::decode(frame.header);
        }
        let mut buf = frame.header.clone();
        if buf.remaining() >= 2 && buf[0] == PROTOCOL_VERSION {
            buf.advance(1);
            let tag = buf.get_u8();
            match tag {
                TAG_OFFLOAD_REQUEST if buf.remaining() == 17 => {
                    let request_id = buf.get_u64_le();
                    let partition_point = buf.get_u32_le();
                    let precision = Precision::from_wire(buf.get_u8());
                    if let Some(precision) = precision {
                        if buf.get_u32_le() as usize == frame.payload.len() {
                            return Ok(Message::OffloadRequest {
                                request_id,
                                partition_point,
                                precision,
                                payload: frame.payload,
                            });
                        }
                    }
                }
                TAG_OFFLOAD_RESPONSE if buf.remaining() == 20 => {
                    let request_id = buf.get_u64_le();
                    let server_time_us = buf.get_u64_le();
                    if buf.get_u32_le() as usize == frame.payload.len() {
                        return Ok(Message::OffloadResponse {
                            request_id,
                            server_time_us,
                            payload: frame.payload,
                        });
                    }
                }
                TAG_PROBE
                    if buf.remaining() == 4 && buf.get_u32_le() as usize == frame.payload.len() =>
                {
                    return Ok(Message::Probe {
                        payload: frame.payload,
                    });
                }
                _ => {}
            }
        }
        // Malformed or split at an unexpected boundary: fall back to the
        // contiguous decoder so every error class matches it exactly.
        Message::decode(frame.flatten())
    }

    /// Decodes one frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncated frames, unknown versions,
    /// unknown tags, or bytes left over after a well-formed message
    /// ([`ProtocolError::TrailingBytes`] — on a real byte stream leftover
    /// bytes mean the framing layer has desynced, so they must never be
    /// silently discarded).
    pub fn decode(mut buf: Bytes) -> Result<Message, ProtocolError> {
        if buf.remaining() < 2 {
            return Err(ProtocolError::Truncated);
        }
        let version = buf.get_u8();
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| -> Result<(), ProtocolError> {
            if buf.remaining() < n {
                Err(ProtocolError::Truncated)
            } else {
                Ok(())
            }
        };
        let msg = match tag {
            TAG_OFFLOAD_REQUEST => {
                need(&buf, 17)?;
                let request_id = buf.get_u64_le();
                let partition_point = buf.get_u32_le();
                let precision_byte = buf.get_u8();
                let precision = Precision::from_wire(precision_byte)
                    .ok_or(ProtocolError::BadPrecision(precision_byte))?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                let payload = buf.copy_to_bytes(len);
                Ok(Message::OffloadRequest {
                    request_id,
                    partition_point,
                    precision,
                    payload,
                })
            }
            TAG_OFFLOAD_RESPONSE => {
                need(&buf, 20)?;
                let request_id = buf.get_u64_le();
                let server_time_us = buf.get_u64_le();
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                let payload = buf.copy_to_bytes(len);
                Ok(Message::OffloadResponse {
                    request_id,
                    server_time_us,
                    payload,
                })
            }
            TAG_LOAD_QUERY => Ok(Message::LoadQuery),
            TAG_LOAD_REPLY => {
                need(&buf, 8)?;
                Ok(Message::LoadReply {
                    k_micro: buf.get_u64_le(),
                })
            }
            TAG_PROBE => {
                need(&buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                Ok(Message::Probe {
                    payload: buf.copy_to_bytes(len),
                })
            }
            TAG_PROBE_ACK => Ok(Message::ProbeAck),
            TAG_SHUTDOWN => Ok(Message::Shutdown),
            TAG_REJECTED => {
                need(&buf, 24)?;
                Ok(Message::Rejected {
                    request_id: buf.get_u64_le(),
                    retry_after_us: buf.get_u64_le(),
                    k_micro: buf.get_u64_le(),
                })
            }
            other => Err(ProtocolError::UnknownTag(other)),
        }?;
        if buf.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes(buf.remaining()));
        }
        Ok(msg)
    }

    /// The wire tag of this message kind (used to report out-of-order
    /// frames precisely).
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            Message::OffloadRequest { .. } => TAG_OFFLOAD_REQUEST,
            Message::OffloadResponse { .. } => TAG_OFFLOAD_RESPONSE,
            Message::LoadQuery => TAG_LOAD_QUERY,
            Message::LoadReply { .. } => TAG_LOAD_REPLY,
            Message::Probe { .. } => TAG_PROBE,
            Message::ProbeAck => TAG_PROBE_ACK,
            Message::Shutdown => TAG_SHUTDOWN,
            Message::Rejected { .. } => TAG_REJECTED,
        }
    }

    /// Converts a load factor to its wire representation.
    #[must_use]
    pub fn k_to_micro(k: f64) -> u64 {
        (k.max(1.0) * 1e6).round() as u64
    }

    /// Converts the wire representation back to a load factor.
    #[must_use]
    pub fn micro_to_k(k_micro: u64) -> f64 {
        (k_micro as f64 / 1e6).max(1.0)
    }
}

/// Errors raised on the wire: frame decoding plus session-level I/O
/// failures (the fault surface the client degrades on instead of
/// panicking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame ended before the declared content.
    Truncated,
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown message tag.
    UnknownTag(u8),
    /// Unknown upload-tensor precision byte on an offload request. Unlike
    /// an unknown *tag* (a message kind this decoder can skip), an unknown
    /// precision means the payload cannot be interpreted at all, and a
    /// resend of the same frame fails identically — so it is not transient.
    BadPrecision(u8),
    /// Bytes were left over after a well-formed message — the framing has
    /// desynced (carries the leftover byte count).
    TrailingBytes(usize),
    /// A payload exceeded [`MAX_PAYLOAD_BYTES`] (carries the offending
    /// length): refused at encode time, and by the socket transport when a
    /// peer declares such a frame length.
    Oversized(usize),
    /// The peer is gone (channel disconnected / server thread exited).
    Disconnected,
    /// No frame arrived within the operation's deadline.
    Timeout,
    /// A well-formed message of the wrong kind arrived mid-exchange
    /// (carries the offending tag).
    Unexpected(u8),
    /// The server thread panicked; reported at teardown instead of
    /// propagating the panic into the client process.
    ServerPanicked,
}

impl ProtocolError {
    /// Whether retrying the whole exchange may succeed. Everything except
    /// a dead peer, an oversized payload or an unknown precision is worth
    /// retrying: timeouts and unexpected frames are transient, and a
    /// corrupt frame (truncated / bad version / unknown tag / trailing
    /// bytes) may decode fine on a resend. Oversized payloads and unknown
    /// precisions are deterministic — resending the same message fails the
    /// same way — so they are not transient.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            ProtocolError::Disconnected
                | ProtocolError::ServerPanicked
                | ProtocolError::Oversized(_)
                | ProtocolError::BadPrecision(_)
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            ProtocolError::BadPrecision(p) => {
                write!(f, "unknown upload-tensor precision {p}")
            }
            ProtocolError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after a well-formed message")
            }
            ProtocolError::Oversized(n) => {
                write!(f, "payload of {n} bytes exceeds the frame size cap")
            }
            ProtocolError::Disconnected => write!(f, "peer disconnected"),
            ProtocolError::Timeout => write!(f, "deadline expired waiting for a frame"),
            ProtocolError::Unexpected(t) => write!(f, "unexpected message tag {t} mid-exchange"),
            ProtocolError::ServerPanicked => write!(f, "server thread panicked"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Message) {
        let encoded = m.encode().expect("encodes");
        let decoded = Message::decode(encoded).expect("round trip");
        assert_eq!(decoded, m);
    }

    fn every_variant() -> Vec<Message> {
        vec![
            Message::OffloadRequest {
                request_id: 42,
                partition_point: 8,
                precision: Precision::Int8,
                payload: Bytes::from(vec![7u8; 48]),
            },
            Message::OffloadResponse {
                request_id: 42,
                server_time_us: 1_234,
                payload: Bytes::from(vec![1u8; 32]),
            },
            Message::LoadQuery,
            Message::LoadReply { k_micro: 2_500_000 },
            Message::Probe {
                payload: Bytes::from(vec![0u8; 16]),
            },
            Message::ProbeAck,
            Message::Shutdown,
            Message::Rejected {
                request_id: 42,
                retry_after_us: 180_000,
                k_micro: 31_500_000,
            },
        ]
    }

    #[test]
    fn all_variants_round_trip() {
        for precision in Precision::ALL {
            round_trip(Message::OffloadRequest {
                request_id: 42,
                partition_point: 8,
                precision,
                payload: Bytes::from(vec![7u8; 129_792]),
            });
        }
        round_trip(Message::OffloadResponse {
            request_id: 42,
            server_time_us: 1_234,
            payload: Bytes::from(vec![1u8; 4_000]),
        });
        round_trip(Message::LoadQuery);
        round_trip(Message::LoadReply { k_micro: 2_500_000 });
        round_trip(Message::Probe {
            payload: Bytes::from(vec![0u8; 8_192]),
        });
        round_trip(Message::ProbeAck);
        round_trip(Message::Shutdown);
        round_trip(Message::Rejected {
            request_id: 42,
            retry_after_us: 180_000,
            k_micro: 31_500_000,
        });
    }

    #[test]
    fn empty_payloads_are_fine() {
        round_trip(Message::Probe {
            payload: Bytes::new(),
        });
        round_trip(Message::OffloadRequest {
            request_id: 0,
            partition_point: 0,
            precision: Precision::Fp32,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn truncated_frames_error() {
        let full = Message::OffloadRequest {
            request_id: 1,
            partition_point: 2,
            precision: Precision::Int4,
            payload: Bytes::from(vec![0u8; 64]),
        }
        .encode()
        .expect("encodes");
        for cut in [0, 1, 2, 10, full.len() - 1] {
            let err = Message::decode(full.slice(0..cut)).unwrap_err();
            assert_eq!(err, ProtocolError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn bad_version_and_tag_error() {
        let mut bad_version = BytesMut::new();
        bad_version.put_u8(99);
        bad_version.put_u8(TAG_LOAD_QUERY);
        assert_eq!(
            Message::decode(bad_version.freeze()).unwrap_err(),
            ProtocolError::BadVersion(99)
        );
        let mut bad_tag = BytesMut::new();
        bad_tag.put_u8(PROTOCOL_VERSION);
        bad_tag.put_u8(200);
        assert_eq!(
            Message::decode(bad_tag.freeze()).unwrap_err(),
            ProtocolError::UnknownTag(200)
        );
    }

    #[test]
    fn k_wire_conversion() {
        assert_eq!(Message::k_to_micro(1.0), 1_000_000);
        assert_eq!(Message::micro_to_k(Message::k_to_micro(3.25)), 3.25);
        // Sub-1 values clamp to the constraint k >= 1 on both paths.
        assert_eq!(Message::k_to_micro(0.5), 1_000_000);
        assert_eq!(Message::micro_to_k(5), 1.0);
    }

    #[test]
    fn error_display() {
        assert!(!ProtocolError::Truncated.to_string().is_empty());
        assert!(ProtocolError::BadVersion(3).to_string().contains('3'));
        assert!(ProtocolError::UnknownTag(9).to_string().contains('9'));
        assert!(ProtocolError::Disconnected
            .to_string()
            .contains("disconnected"));
        assert!(ProtocolError::Timeout.to_string().contains("deadline"));
        assert!(ProtocolError::Unexpected(4).to_string().contains('4'));
    }

    #[test]
    fn tags_survive_the_round_trip() {
        let msgs = [
            Message::OffloadRequest {
                request_id: 1,
                partition_point: 2,
                precision: Precision::Fp16,
                payload: Bytes::new(),
            },
            Message::OffloadResponse {
                request_id: 1,
                server_time_us: 3,
                payload: Bytes::new(),
            },
            Message::LoadQuery,
            Message::LoadReply { k_micro: 1_000_000 },
            Message::Probe {
                payload: Bytes::new(),
            },
            Message::ProbeAck,
            Message::Shutdown,
            Message::Rejected {
                request_id: 1,
                retry_after_us: 2,
                k_micro: 3_000_000,
            },
        ];
        for m in msgs {
            let tag = m.tag();
            let decoded = Message::decode(m.encode().expect("encodes")).expect("round trip");
            assert_eq!(decoded.tag(), tag);
            // The tag is the second byte of every frame.
            assert_eq!(m.encode().expect("encodes")[1], tag);
        }
    }

    #[test]
    fn transience_classification() {
        assert!(ProtocolError::Timeout.is_transient());
        assert!(ProtocolError::Truncated.is_transient());
        assert!(ProtocolError::BadVersion(9).is_transient());
        assert!(ProtocolError::UnknownTag(9).is_transient());
        assert!(ProtocolError::Unexpected(2).is_transient());
        assert!(!ProtocolError::Disconnected.is_transient());
        assert!(!ProtocolError::ServerPanicked.is_transient());
        assert!(!ProtocolError::BadPrecision(4).is_transient());
    }

    #[test]
    fn rejected_truncations_error() {
        let full = Message::Rejected {
            request_id: 7,
            retry_after_us: 9,
            k_micro: 2_000_000,
        }
        .encode()
        .expect("encodes");
        assert_eq!(full.len(), 2 + 24);
        for cut in [2, 9, 17, full.len() - 1] {
            let err = Message::decode(full.slice(0..cut)).unwrap_err();
            assert_eq!(err, ProtocolError::Truncated, "cut at {cut}");
        }
    }

    /// The header/payload frame must flatten to exactly the bytes the
    /// contiguous encoder produces, for every message kind.
    #[test]
    fn frames_flatten_to_the_contiguous_encoding() {
        let msgs = [
            Message::OffloadRequest {
                request_id: 42,
                partition_point: 8,
                precision: Precision::Int4,
                payload: Bytes::from(vec![7u8; 129_792]),
            },
            Message::OffloadResponse {
                request_id: 42,
                server_time_us: 1_234,
                payload: Bytes::from(vec![1u8; 4_000]),
            },
            Message::LoadQuery,
            Message::LoadReply { k_micro: 2_500_000 },
            Message::Probe {
                payload: Bytes::from(vec![0u8; 8_192]),
            },
            Message::ProbeAck,
            Message::Shutdown,
            Message::Rejected {
                request_id: 42,
                retry_after_us: 180_000,
                k_micro: 31_500_000,
            },
        ];
        for m in msgs {
            let frame = m.to_frame().expect("encodes");
            let contiguous = m.encode().expect("encodes");
            assert_eq!(frame.len(), contiguous.len());
            assert_eq!(frame.clone().flatten(), contiguous, "{m:?}");
            assert_eq!(Message::decode_frame(frame).expect("round trip"), m);
        }
    }

    /// `to_frame` and `decode_frame` move the payload by reference: the
    /// decoded payload aliases the very allocation the sender handed in.
    #[test]
    fn frame_payloads_are_zero_copy() {
        let payload = Bytes::from(vec![9u8; 65_536]);
        let m = Message::OffloadRequest {
            request_id: 7,
            partition_point: 3,
            precision: Precision::Int8,
            payload: payload.clone(),
        };
        let frame = m.to_frame().expect("encodes");
        assert!(
            std::ptr::eq(frame.payload.as_ref(), payload.as_ref()),
            "to_frame must share the payload allocation"
        );
        let decoded = Message::decode_frame(frame).expect("round trip");
        let Message::OffloadRequest { payload: out, .. } = decoded else {
            panic!("wrong variant");
        };
        assert!(
            std::ptr::eq(out.as_ref(), payload.as_ref()),
            "decode_frame must keep sharing the payload allocation"
        );
    }

    /// The contiguous encoder memcpys payload bytes and says so. (Other
    /// tests share the process-wide counter, so assert a lower bound.)
    #[test]
    fn contiguous_encode_counts_copied_payload_bytes() {
        let before = framing_bytes_copied();
        let _ = Message::Probe {
            payload: Bytes::from(vec![0u8; 10_000]),
        }
        .encode()
        .expect("encodes");
        assert!(framing_bytes_copied() - before >= 10_000);
    }

    /// A frame whose header declares a different payload length than the
    /// payload segment carries falls back to the contiguous decoder, which
    /// reports the same truncation error it always has.
    #[test]
    fn mismatched_frame_lengths_fall_back_to_the_contiguous_decoder() {
        let mut frame = Message::OffloadRequest {
            request_id: 1,
            partition_point: 2,
            precision: Precision::Fp32,
            payload: Bytes::from(vec![0u8; 64]),
        }
        .to_frame()
        .expect("encodes");
        frame.payload = frame.payload.slice(0..32); // lose half the payload
        assert_eq!(
            Message::decode_frame(frame).unwrap_err(),
            ProtocolError::Truncated
        );
    }

    /// Wrapping a contiguous frame loses nothing: decode_frame on a
    /// flattened-then-wrapped frame equals decode.
    #[test]
    fn contiguous_frames_wrap_and_decode() {
        let m = Message::OffloadResponse {
            request_id: 3,
            server_time_us: 17,
            payload: Bytes::from(vec![5u8; 256]),
        };
        let wrapped = Frame::from_contiguous(m.encode().expect("encodes"));
        assert!(!wrapped.is_empty());
        assert_eq!(Message::decode_frame(wrapped).expect("round trip"), m);
    }

    /// Wire compatibility: a decoder that predates [`Message::Rejected`]
    /// classifies tag 8 as an unknown tag — which the exchange loops remap
    /// to [`ProtocolError::Unexpected`] — so a new server talking to an old
    /// client fails safe (local fallback), never panics. We model the old
    /// decoder by checking that any tag above the legacy range decodes to
    /// the same error class the legacy decoder produced.
    #[test]
    fn future_tags_fail_safe_on_old_decoders() {
        // An old decoder seeing today's Rejected frame: tag 8 was unknown.
        let mut future = BytesMut::new();
        future.put_u8(PROTOCOL_VERSION);
        future.put_u8(TAG_REJECTED + 1); // a tag *this* decoder doesn't know
        future.put_u64_le(1);
        let err = Message::decode(future.freeze()).unwrap_err();
        assert_eq!(err, ProtocolError::UnknownTag(TAG_REJECTED + 1));
        // Unknown tags stay transient: the peer may resend something valid.
        assert!(err.is_transient());
    }

    /// Regression: `decode` used to silently accept (and drop) bytes left
    /// over after a well-formed message — which on a TCP stream masks
    /// framing desync. Every tag must now reject them.
    #[test]
    fn trailing_bytes_are_rejected_for_every_tag() {
        for m in every_variant() {
            for extra in [1usize, 3, 17] {
                let mut v = m.encode().expect("encodes").to_vec();
                v.resize(v.len() + extra, 0xAB);
                let err = Message::decode(Bytes::from(v)).unwrap_err();
                assert_eq!(
                    err,
                    ProtocolError::TrailingBytes(extra),
                    "tag {} with {extra} trailing byte(s)",
                    m.tag()
                );
                // Desync is worth a resync attempt, like corruption.
                assert!(err.is_transient());
            }
        }
    }

    /// Trailing bytes after the *declared payload* of a frame are caught
    /// through the split decoder too (via its contiguous fallback).
    #[test]
    fn trailing_bytes_are_rejected_through_decode_frame() {
        let m = Message::Probe {
            payload: Bytes::from(vec![4u8; 8]),
        };
        let mut frame = m.to_frame().expect("encodes");
        let mut grown = frame.payload.to_vec();
        grown.push(0xCD);
        frame.payload = Bytes::from(grown);
        assert_eq!(
            Message::decode_frame(frame).unwrap_err(),
            ProtocolError::TrailingBytes(1)
        );
    }

    /// Regression: `encode_header` used to cast `payload.len() as u32`
    /// unchecked, so giant payloads silently truncated their declared
    /// length on the wire. Both encoders must refuse them now.
    #[test]
    fn oversized_payloads_are_refused_at_encode_time() {
        let payload = crate::pool::zero_payload(MAX_PAYLOAD_BYTES + 1);
        for m in [
            Message::Probe {
                payload: payload.clone(),
            },
            Message::OffloadRequest {
                request_id: 1,
                partition_point: 2,
                precision: Precision::Fp32,
                payload: payload.clone(),
            },
            Message::OffloadResponse {
                request_id: 1,
                server_time_us: 3,
                payload: payload.clone(),
            },
        ] {
            let err = m.encode().unwrap_err();
            assert_eq!(err, ProtocolError::Oversized(MAX_PAYLOAD_BYTES + 1));
            assert_eq!(
                m.to_frame().unwrap_err(),
                ProtocolError::Oversized(MAX_PAYLOAD_BYTES + 1)
            );
            // Deterministic failure: retrying the same send cannot help.
            assert!(!err.is_transient());
        }
        // A payload exactly at the cap still encodes.
        let at_cap = Message::Probe {
            payload: crate::pool::zero_payload(MAX_PAYLOAD_BYTES),
        };
        assert!(at_cap.to_frame().is_ok());
    }

    #[test]
    fn new_error_variants_display() {
        assert!(ProtocolError::TrailingBytes(3).to_string().contains('3'));
        assert!(ProtocolError::Oversized(70_000_000)
            .to_string()
            .contains("70000000"));
        assert!(ProtocolError::BadPrecision(9)
            .to_string()
            .contains("precision 9"));
    }

    /// Forward compatibility, precision edition (the TAG-8 story one field
    /// deeper): a frame declaring a precision this decoder doesn't know
    /// must decode to [`ProtocolError::BadPrecision`] — never panic, never
    /// misparse the payload at a guessed width — and the error must be
    /// non-transient, because resending the identical frame fails the same
    /// way.
    #[test]
    fn unknown_precisions_fail_safe_and_deterministic() {
        let good = Message::OffloadRequest {
            request_id: 11,
            partition_point: 4,
            precision: Precision::Int8,
            payload: Bytes::from(vec![3u8; 24]),
        };
        let encoded = good.encode().expect("encodes");
        // The precision byte sits after version(1) + tag(1) + id(8) + p(4).
        const PRECISION_OFFSET: usize = 14;
        for bad in [4u8, 5, 17, 255] {
            let mut v = encoded.to_vec();
            v[PRECISION_OFFSET] = bad;
            let err = Message::decode(Bytes::from(v)).unwrap_err();
            assert_eq!(err, ProtocolError::BadPrecision(bad));
            assert!(!err.is_transient(), "precision {bad} must not be retried");
        }
        // Same through the split-frame decoder (fast path falls back to
        // the contiguous one, so the error class is identical).
        for bad in [4u8, 200] {
            let mut frame = good.to_frame().expect("encodes");
            let mut header = frame.header.to_vec();
            header[PRECISION_OFFSET] = bad;
            frame.header = Bytes::from(header);
            assert_eq!(
                Message::decode_frame(frame).unwrap_err(),
                ProtocolError::BadPrecision(bad)
            );
        }
    }

    /// Every precision survives the zero-copy frame path, and the wire
    /// byte is where the layout says it is.
    #[test]
    fn precisions_survive_the_frame_round_trip() {
        for precision in Precision::ALL {
            let m = Message::OffloadRequest {
                request_id: 5,
                partition_point: 2,
                precision,
                payload: Bytes::from(vec![8u8; 96]),
            };
            let frame = m.to_frame().expect("encodes");
            assert_eq!(frame.header[14], precision.wire());
            let decoded = Message::decode_frame(frame).expect("round trip");
            assert_eq!(decoded, m);
        }
    }
}

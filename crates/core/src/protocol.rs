//! The device ↔ edge-server wire protocol (§III-A, §IV).
//!
//! After the device executes `L_1..L_p` it ships the intermediate tensors
//! *together with the partition point* so the server can fetch (or build)
//! the matching suffix graph from its own partition cache. The runtime
//! profiler's probe packets and the periodic load-factor query ride the
//! same connection.
//!
//! The encoding is a compact little-endian tag-length-value format over
//! [`bytes`]; payloads are byte blobs (this reproduction moves simulated
//! tensors, so payload *sizes* are what matter, but the framing is real and
//! round-trips byte-exactly).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

const TAG_OFFLOAD_REQUEST: u8 = 1;
const TAG_OFFLOAD_RESPONSE: u8 = 2;
const TAG_LOAD_QUERY: u8 = 3;
const TAG_LOAD_REPLY: u8 = 4;
const TAG_PROBE: u8 = 5;
const TAG_PROBE_ACK: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_REJECTED: u8 = 8;

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Device -> server: partition point plus the crossing tensors.
    OffloadRequest {
        /// Client-chosen request id, echoed in the response.
        request_id: u64,
        /// The partition point `p`, so the server can partition/cache.
        partition_point: u32,
        /// The packed intermediate tensors (MakeTuple output).
        payload: Bytes,
    },
    /// Server -> device: the inference result.
    OffloadResponse {
        /// Echoed request id.
        request_id: u64,
        /// Observed server-side execution time in microseconds (fed to the
        /// device's records; the server's own tracker also sees it).
        server_time_us: u64,
        /// The result tensor.
        payload: Bytes,
    },
    /// Device -> server: "what is your current load factor?" (periodic).
    LoadQuery,
    /// Server -> device: the most recent `k`.
    LoadReply {
        /// Load influence factor, `k >= 1`, transported as micro-units to
        /// keep the frame integer-only.
        k_micro: u64,
    },
    /// Device -> server: bandwidth probe of the given size.
    Probe {
        /// Probe payload (size matters, contents do not).
        payload: Bytes,
    },
    /// Server -> device: probe acknowledgement.
    ProbeAck,
    /// Device -> server: end of session.
    Shutdown,
    /// Server -> device: admission control shed this request — the
    /// pending-work budget is exhausted, run the suffix locally.
    Rejected {
        /// Echoed request id.
        request_id: u64,
        /// Predicted time until the server's backlog drains, in
        /// microseconds; a hint for when offloading is worth retrying.
        retry_after_us: u64,
        /// The server's current load factor, piggybacked so the client's
        /// profile is load-aware immediately (micro-units, like
        /// [`Message::LoadReply`]).
        k_micro: u64,
    },
}

impl Message {
    /// Encodes the message into a self-delimiting frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(PROTOCOL_VERSION);
        match self {
            Message::OffloadRequest {
                request_id,
                partition_point,
                payload,
            } => {
                b.put_u8(TAG_OFFLOAD_REQUEST);
                b.put_u64_le(*request_id);
                b.put_u32_le(*partition_point);
                b.put_u32_le(payload.len() as u32);
                b.put_slice(payload);
            }
            Message::OffloadResponse {
                request_id,
                server_time_us,
                payload,
            } => {
                b.put_u8(TAG_OFFLOAD_RESPONSE);
                b.put_u64_le(*request_id);
                b.put_u64_le(*server_time_us);
                b.put_u32_le(payload.len() as u32);
                b.put_slice(payload);
            }
            Message::LoadQuery => b.put_u8(TAG_LOAD_QUERY),
            Message::LoadReply { k_micro } => {
                b.put_u8(TAG_LOAD_REPLY);
                b.put_u64_le(*k_micro);
            }
            Message::Probe { payload } => {
                b.put_u8(TAG_PROBE);
                b.put_u32_le(payload.len() as u32);
                b.put_slice(payload);
            }
            Message::ProbeAck => b.put_u8(TAG_PROBE_ACK),
            Message::Shutdown => b.put_u8(TAG_SHUTDOWN),
            Message::Rejected {
                request_id,
                retry_after_us,
                k_micro,
            } => {
                b.put_u8(TAG_REJECTED);
                b.put_u64_le(*request_id);
                b.put_u64_le(*retry_after_us);
                b.put_u64_le(*k_micro);
            }
        }
        b.freeze()
    }

    /// Decodes one frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncated frames, unknown versions or
    /// unknown tags.
    pub fn decode(mut buf: Bytes) -> Result<Message, ProtocolError> {
        if buf.remaining() < 2 {
            return Err(ProtocolError::Truncated);
        }
        let version = buf.get_u8();
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| -> Result<(), ProtocolError> {
            if buf.remaining() < n {
                Err(ProtocolError::Truncated)
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_OFFLOAD_REQUEST => {
                need(&buf, 16)?;
                let request_id = buf.get_u64_le();
                let partition_point = buf.get_u32_le();
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                let payload = buf.copy_to_bytes(len);
                Ok(Message::OffloadRequest {
                    request_id,
                    partition_point,
                    payload,
                })
            }
            TAG_OFFLOAD_RESPONSE => {
                need(&buf, 20)?;
                let request_id = buf.get_u64_le();
                let server_time_us = buf.get_u64_le();
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                let payload = buf.copy_to_bytes(len);
                Ok(Message::OffloadResponse {
                    request_id,
                    server_time_us,
                    payload,
                })
            }
            TAG_LOAD_QUERY => Ok(Message::LoadQuery),
            TAG_LOAD_REPLY => {
                need(&buf, 8)?;
                Ok(Message::LoadReply {
                    k_micro: buf.get_u64_le(),
                })
            }
            TAG_PROBE => {
                need(&buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                Ok(Message::Probe {
                    payload: buf.copy_to_bytes(len),
                })
            }
            TAG_PROBE_ACK => Ok(Message::ProbeAck),
            TAG_SHUTDOWN => Ok(Message::Shutdown),
            TAG_REJECTED => {
                need(&buf, 24)?;
                Ok(Message::Rejected {
                    request_id: buf.get_u64_le(),
                    retry_after_us: buf.get_u64_le(),
                    k_micro: buf.get_u64_le(),
                })
            }
            other => Err(ProtocolError::UnknownTag(other)),
        }
    }

    /// The wire tag of this message kind (used to report out-of-order
    /// frames precisely).
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            Message::OffloadRequest { .. } => TAG_OFFLOAD_REQUEST,
            Message::OffloadResponse { .. } => TAG_OFFLOAD_RESPONSE,
            Message::LoadQuery => TAG_LOAD_QUERY,
            Message::LoadReply { .. } => TAG_LOAD_REPLY,
            Message::Probe { .. } => TAG_PROBE,
            Message::ProbeAck => TAG_PROBE_ACK,
            Message::Shutdown => TAG_SHUTDOWN,
            Message::Rejected { .. } => TAG_REJECTED,
        }
    }

    /// Converts a load factor to its wire representation.
    #[must_use]
    pub fn k_to_micro(k: f64) -> u64 {
        (k.max(1.0) * 1e6).round() as u64
    }

    /// Converts the wire representation back to a load factor.
    #[must_use]
    pub fn micro_to_k(k_micro: u64) -> f64 {
        (k_micro as f64 / 1e6).max(1.0)
    }
}

/// Errors raised on the wire: frame decoding plus session-level I/O
/// failures (the fault surface the client degrades on instead of
/// panicking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame ended before the declared content.
    Truncated,
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown message tag.
    UnknownTag(u8),
    /// The peer is gone (channel disconnected / server thread exited).
    Disconnected,
    /// No frame arrived within the operation's deadline.
    Timeout,
    /// A well-formed message of the wrong kind arrived mid-exchange
    /// (carries the offending tag).
    Unexpected(u8),
    /// The server thread panicked; reported at teardown instead of
    /// propagating the panic into the client process.
    ServerPanicked,
}

impl ProtocolError {
    /// Whether retrying the whole exchange may succeed. Everything except
    /// a dead peer is worth retrying: timeouts and unexpected frames are
    /// transient, and a corrupt frame (truncated / bad version / unknown
    /// tag) may decode fine on a resend.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            ProtocolError::Disconnected | ProtocolError::ServerPanicked
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            ProtocolError::Disconnected => write!(f, "peer disconnected"),
            ProtocolError::Timeout => write!(f, "deadline expired waiting for a frame"),
            ProtocolError::Unexpected(t) => write!(f, "unexpected message tag {t} mid-exchange"),
            ProtocolError::ServerPanicked => write!(f, "server thread panicked"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Message) {
        let encoded = m.encode();
        let decoded = Message::decode(encoded).expect("round trip");
        assert_eq!(decoded, m);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::OffloadRequest {
            request_id: 42,
            partition_point: 8,
            payload: Bytes::from(vec![7u8; 129_792]),
        });
        round_trip(Message::OffloadResponse {
            request_id: 42,
            server_time_us: 1_234,
            payload: Bytes::from(vec![1u8; 4_000]),
        });
        round_trip(Message::LoadQuery);
        round_trip(Message::LoadReply { k_micro: 2_500_000 });
        round_trip(Message::Probe {
            payload: Bytes::from(vec![0u8; 8_192]),
        });
        round_trip(Message::ProbeAck);
        round_trip(Message::Shutdown);
        round_trip(Message::Rejected {
            request_id: 42,
            retry_after_us: 180_000,
            k_micro: 31_500_000,
        });
    }

    #[test]
    fn empty_payloads_are_fine() {
        round_trip(Message::Probe {
            payload: Bytes::new(),
        });
        round_trip(Message::OffloadRequest {
            request_id: 0,
            partition_point: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn truncated_frames_error() {
        let full = Message::OffloadRequest {
            request_id: 1,
            partition_point: 2,
            payload: Bytes::from(vec![0u8; 64]),
        }
        .encode();
        for cut in [0, 1, 2, 10, full.len() - 1] {
            let err = Message::decode(full.slice(0..cut)).unwrap_err();
            assert_eq!(err, ProtocolError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn bad_version_and_tag_error() {
        let mut bad_version = BytesMut::new();
        bad_version.put_u8(99);
        bad_version.put_u8(TAG_LOAD_QUERY);
        assert_eq!(
            Message::decode(bad_version.freeze()).unwrap_err(),
            ProtocolError::BadVersion(99)
        );
        let mut bad_tag = BytesMut::new();
        bad_tag.put_u8(PROTOCOL_VERSION);
        bad_tag.put_u8(200);
        assert_eq!(
            Message::decode(bad_tag.freeze()).unwrap_err(),
            ProtocolError::UnknownTag(200)
        );
    }

    #[test]
    fn k_wire_conversion() {
        assert_eq!(Message::k_to_micro(1.0), 1_000_000);
        assert_eq!(Message::micro_to_k(Message::k_to_micro(3.25)), 3.25);
        // Sub-1 values clamp to the constraint k >= 1 on both paths.
        assert_eq!(Message::k_to_micro(0.5), 1_000_000);
        assert_eq!(Message::micro_to_k(5), 1.0);
    }

    #[test]
    fn error_display() {
        assert!(!ProtocolError::Truncated.to_string().is_empty());
        assert!(ProtocolError::BadVersion(3).to_string().contains('3'));
        assert!(ProtocolError::UnknownTag(9).to_string().contains('9'));
        assert!(ProtocolError::Disconnected
            .to_string()
            .contains("disconnected"));
        assert!(ProtocolError::Timeout.to_string().contains("deadline"));
        assert!(ProtocolError::Unexpected(4).to_string().contains('4'));
    }

    #[test]
    fn tags_survive_the_round_trip() {
        let msgs = [
            Message::OffloadRequest {
                request_id: 1,
                partition_point: 2,
                payload: Bytes::new(),
            },
            Message::OffloadResponse {
                request_id: 1,
                server_time_us: 3,
                payload: Bytes::new(),
            },
            Message::LoadQuery,
            Message::LoadReply { k_micro: 1_000_000 },
            Message::Probe {
                payload: Bytes::new(),
            },
            Message::ProbeAck,
            Message::Shutdown,
            Message::Rejected {
                request_id: 1,
                retry_after_us: 2,
                k_micro: 3_000_000,
            },
        ];
        for m in msgs {
            let tag = m.tag();
            let decoded = Message::decode(m.encode()).expect("round trip");
            assert_eq!(decoded.tag(), tag);
            // The tag is the second byte of every frame.
            assert_eq!(m.encode()[1], tag);
        }
    }

    #[test]
    fn transience_classification() {
        assert!(ProtocolError::Timeout.is_transient());
        assert!(ProtocolError::Truncated.is_transient());
        assert!(ProtocolError::BadVersion(9).is_transient());
        assert!(ProtocolError::UnknownTag(9).is_transient());
        assert!(ProtocolError::Unexpected(2).is_transient());
        assert!(!ProtocolError::Disconnected.is_transient());
        assert!(!ProtocolError::ServerPanicked.is_transient());
    }

    #[test]
    fn rejected_truncations_error() {
        let full = Message::Rejected {
            request_id: 7,
            retry_after_us: 9,
            k_micro: 2_000_000,
        }
        .encode();
        assert_eq!(full.len(), 2 + 24);
        for cut in [2, 9, 17, full.len() - 1] {
            let err = Message::decode(full.slice(0..cut)).unwrap_err();
            assert_eq!(err, ProtocolError::Truncated, "cut at {cut}");
        }
    }

    /// Wire compatibility: a decoder that predates [`Message::Rejected`]
    /// classifies tag 8 as an unknown tag — which the exchange loops remap
    /// to [`ProtocolError::Unexpected`] — so a new server talking to an old
    /// client fails safe (local fallback), never panics. We model the old
    /// decoder by checking that any tag above the legacy range decodes to
    /// the same error class the legacy decoder produced.
    #[test]
    fn future_tags_fail_safe_on_old_decoders() {
        // An old decoder seeing today's Rejected frame: tag 8 was unknown.
        let mut future = BytesMut::new();
        future.put_u8(PROTOCOL_VERSION);
        future.put_u8(TAG_REJECTED + 1); // a tag *this* decoder doesn't know
        future.put_u64_le(1);
        let err = Message::decode(future.freeze()).unwrap_err();
        assert_eq!(err, ProtocolError::UnknownTag(TAG_REJECTED + 1));
        // Unknown tags stay transient: the peer may resend something valid.
        assert!(err.is_transient());
    }
}

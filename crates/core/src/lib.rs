//! LoADPart — load-aware dynamic DNN partition for edge offloading.
//!
//! This crate is the paper's primary contribution, built on the substrate
//! crates of the workspace:
//!
//! * [`algorithm`] — Problem (1) and Algorithm 1: the O(n) partition
//!   decision over the topological order with prefix/suffix sums, the load
//!   factor `k` multiplied onto the suffix sums at query time (§IV).
//! * [`cache`] — the partition cache keyed by partition point (§III-A).
//! * [`admission`] — server-side admission control: a bounded pending-work
//!   budget over the `k`-scaled predicted suffix times; past it the server
//!   sheds load with [`protocol::Message::Rejected`] instead of queueing.
//! * [`baselines`] — local inference, full offloading, Neurosurgeon
//!   (bandwidth-aware, load-oblivious) and a DADS-style min-cut partitioner
//!   (the O(n³) comparator that motivates the light-weight algorithm).
//! * [`engine`] — the shared per-request offload pipeline
//!   ([`engine::OffloadEngine`]): profiler refresh, decision, prefix,
//!   upload, suffix hand-off and load feedback, generic over the
//!   [`engine::DeviceExecutor`] / [`engine::Transport`] /
//!   [`engine::ServerBackend`] traits. Every driver below is a thin
//!   composition over it, and all of them emit the one
//!   [`engine::InferenceRecord`] telemetry type.
//! * [`system`] — the end-to-end co-simulation: device execution, probe-
//!   based bandwidth estimation, upload over the link, GPU queueing under
//!   background load, the server-side `k` tracker and GPU watchdog.
//! * [`threaded`] — the engine over real OS threads and the wire
//!   [`protocol`], with deadline-based I/O, bounded retries and local
//!   fallback when the server misbehaves.
//! * [`fault`] — deterministic fault injection for the wire runtime
//!   (scripted per-frame drop/delay/corrupt/duplicate).
//! * [`transport`] — the real-socket transport: TCP / Unix-domain-socket
//!   implementations of [`threaded::FrameChannel`] with length-prefixed
//!   framing, and the [`transport::SocketServer`] behind `loadpart serve`
//!   so server and clients run as separate OS processes.
//! * [`emulator`] — the deterministic link emulator that generalizes
//!   fault injection: latency, jitter, token-bucket rate limiting,
//!   periodic stalls and connection resets over any frame channel.
//! * [`multi_client`] — N engines sharing one GPU simulator.
//! * [`policy`] — the pluggable decision layer: the
//!   [`policy::PartitionPolicy`] trait every decision site dispatches
//!   through, the memoization wrapper, the online-learning bandit and the
//!   oracle reference policy.
//! * [`chaos`] — the chaos soak harness: N threaded clients, a scripted
//!   load spike and injected frame faults, asserting overload protection
//!   end to end (shedding, breakers, recovery).
//! * [`cluster`] — the multi-server edge cluster: per-server profiles
//!   and breakers behind a joint (server, p) decision with failover,
//!   plus the scripted-outage cluster chaos/bench harnesses behind
//!   `loadpart chaos --cluster` and `loadpart bench --cluster`.
//! * [`telemetry`] — the observability layer shared by every driver:
//!   metrics registry (counters/gauges/histograms) and per-request trace
//!   spans through pluggable sinks, zero-cost when disabled.
//! * [`pool`] — the shared zero-payload buffer pool backing the wire
//!   runtime's zero-copy framing.
//! * [`mod@serving_bench`] — the reproducible serving throughput benchmark
//!   behind `loadpart bench` (baseline vs. parallel hot path).
//! * [`scenario`] — drivers that reproduce the paper's experiments
//!   (bandwidth sweeps for Figures 6–8, load timelines for Figures 2/9).
//! * [`compare`] — the policy-comparison subsystem behind
//!   `loadpart compare`: adversarial scenarios (nonstationary load,
//!   miscalibrated device model, drifting bandwidth) reporting per-policy
//!   latency and regret against the oracle.
//!
//! # Quickstart
//!
//! ```
//! use loadpart::{PartitionSolver, system::trained_models};
//! let graph = lp_models::alexnet(1);
//! let (user, edge) = trained_models(64, 7); // small profile for the doctest
//! let solver = PartitionSolver::new(&graph, &user, &edge);
//! // 8 Mbps, idle server: partial offloading wins.
//! let d = solver.decide(8.0, 1.0);
//! assert!(d.p < graph.len()); // not local
//! ```

// `deny`, not `forbid`: the transport's readiness loop carries the one
// narrowly scoped `#[allow(unsafe_code)]` in the workspace — a
// hand-declared `poll(2)` binding (std exposes no readiness API and the
// workspace links no external crates). Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod algorithm;
pub mod baselines;
pub mod cache;
pub mod chaos;
pub mod cluster;
pub mod compare;
pub mod emulator;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod multi_client;
pub mod policy;
pub mod pool;
pub mod protocol;
pub mod quant;
pub mod quant_bench;
pub mod scenario;
pub mod serving_bench;
pub mod system;
pub mod telemetry;
pub mod threaded;
pub mod transport;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
pub use algorithm::{Decision, PartitionSolver};
pub use baselines::{min_cut_partition, MinCutResult, Policy};
pub use cache::PartitionCache;
pub use chaos::{chaos_run, ChaosConfig, ChaosReport, ChaosTransport, ClientSummary};
pub use cluster::{
    cluster_bench, cluster_chaos_run, ClusterBenchReport, ClusterChaosConfig, ClusterChaosReport,
    ClusterEngine, ClusterLink, ClusterModeStats, ClusterProfile, ClusterServerSummary,
    ClusterTransport, GatedChannel, OutageSwitch, RouteInfo, ServerSpec, ServerStatus,
};
pub use compare::{
    compare_policies, run_scenario, CompareConfig, CompareReport, PolicyResult, ScenarioKind,
    ScenarioResult,
};
pub use emulator::{EmulatedLink, LinkSpec, LinkStats};
pub use energy::{decide_energy, EnergyDecision, PowerModel};
pub use engine::{
    BreakerState, CircuitBreaker, ConfigError, DeviceExecutor, EngineConfig, InferenceRecord,
    OffloadEngine, Outcome, PendingRequest, RuntimeProfile, ServerBackend, SuffixOutcome,
    SuffixRequest, Transport, WireGate,
};
pub use fault::{FaultAction, FaultInjector, FaultPlan};
pub use lp_graph::{
    quantized_tensor_bytes, quantized_transmission_series, AccuracyModel, Precision,
};
pub use multi_client::{
    multi_client_run, multi_client_run_with_telemetry, ClientOutcomes, MultiClientConfig,
    MultiClientReport,
};
pub use policy::{
    BanditConfig, BanditPolicy, MemoPolicy, OracleCell, OraclePolicy, PartitionPolicy,
    PolicyContext,
};
pub use protocol::{framing_bytes_copied, Frame, Message, ProtocolError, PROTOCOL_VERSION};
pub use quant::{
    dequantize_into, payload_len, quantize_into, round_trip_bound, QuantError, QuantPolicy,
    QuantStage, DEFAULT_ACCURACY_BUDGET,
};
pub use quant_bench::{quant_bench, QuantBenchConfig, QuantBenchReport, QuantModeStats};
pub use scenario::{
    bandwidth_sweep, load_timeline, load_timeline_with_telemetry, LoadPhase, SweepPoint,
    TimelinePoint,
};
pub use serving_bench::{
    fleet_bench, serving_bench, BenchConfig, BenchMode, BenchPoint, BenchReport, BenchTransport,
    FleetConfig, FleetPoint, FleetReport,
};
pub use system::{OffloadingSystem, SystemConfig, Testbed};
pub use telemetry::{
    JsonlSink, MetricsRegistry, MetricsSnapshot, RingSink, SpanEvent, SpanKind, Telemetry,
    TraceSink,
};
pub use threaded::{
    spawn_server, spawn_server_full, spawn_server_instrumented, spawn_server_tuned,
    spawn_server_with_faults, ClientConn, FrameChannel, LoadEnv, ReplyWaker, ServerFaultSpec,
    ServerHandle, ServerTuning, SessionConnector, SessionReceiver, SessionSender, StallWindow,
    ThreadedClient,
};
#[cfg(unix)]
pub use transport::UdsFrameChannel;
pub use transport::{
    default_shards, measure_bandwidth, SocketChannel, SocketServer, TcpFrameChannel,
};

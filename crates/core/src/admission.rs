//! Server-side admission control: a bounded pending-work budget.
//!
//! The paper's edge server accepts every `OffloadRequest` unconditionally;
//! under a load spike that just grows the queue and degrades *every*
//! client. Classic SLO-driven serving systems (Clipper, Clockwork) instead
//! reject work whose predicted completion would blow the budget — and
//! LoADPart's per-partition latency models plus the load factor `k` give
//! the server exactly the signal needed to predict completion times.
//!
//! [`AdmissionController`] keeps a backlog watermark: each admitted suffix
//! occupies the (single, FIFO) GPU from `max(now, backlog_until)` for its
//! `k`-scaled predicted execution time. A new request is rejected when
//! either
//!
//! * the number of in-flight suffixes has reached
//!   [`AdmissionConfig::max_inflight`], or
//! * the predicted queue delay (`backlog_until - now`) exceeds
//!   [`AdmissionConfig::max_queue_delay`].
//!
//! A rejection carries `retry_after` — the time until the backlog drains —
//! so the client can piggyback it into its next decision.
//!
//! # Batched admission
//!
//! When the suffix workers batch compatible requests (continuous batching,
//! [`crate::threaded::ServerTuning::max_batch`]), charging each member of
//! the batch its full predicted execution time would over-count the
//! backlog: the batch occupies the GPU *once*. [`AdmissionController::
//! assess_batched`] therefore keeps an **open batch** — the most recent
//! admission's compatibility bucket, predicted completion and member
//! count. A request arriving while the open batch is still pending and
//! compatible (same bucket, under [`AdmissionConfig::max_batch`]) *joins*
//! it: admitted at the batch's start/completion, counted against
//! `max_inflight`, but the backlog watermark does not advance. Any other
//! admission closes the batch and opens a new one. With `max_batch == 1`
//! (the default) a batch is full the moment it opens, so the behaviour is
//! bit-for-bit the historical per-request budget.

use std::collections::VecDeque;

use lp_sim::{SimDuration, SimTime};

/// The pending-work budget for one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum number of suffixes queued or executing at once. `0` rejects
    /// every request (useful for forcing the shed path in tests).
    pub max_inflight: usize,
    /// Maximum predicted queue delay before a new suffix would start.
    pub max_queue_delay: SimDuration,
    /// Maximum requests sharing one predicted batch execution in
    /// [`AdmissionController::assess_batched`]. `1` (and `0`, which is
    /// clamped) disables batching: every request is charged its own
    /// backlog slot — the historical behaviour.
    pub max_batch: usize,
}

impl AdmissionConfig {
    /// A budget that never rejects — the pre-admission-control behaviour,
    /// used so the serving loops have one uniform code path.
    #[must_use]
    pub fn unbounded() -> Self {
        AdmissionConfig {
            max_inflight: usize::MAX,
            // The largest representable duration: `from_secs` here would
            // overflow the nanosecond representation (a debug-build panic).
            max_queue_delay: SimDuration::from_nanos(u64::MAX),
            max_batch: 1,
        }
    }

    /// The same budget with batched-admission headroom of `max_batch`
    /// requests per predicted batch execution.
    #[must_use]
    pub fn with_max_batch(self, max_batch: usize) -> Self {
        AdmissionConfig { max_batch, ..self }
    }
}

impl Default for AdmissionConfig {
    /// A small default budget: 4 in-flight suffixes, 250 ms queue delay,
    /// per-request (unbatched) accounting.
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 4,
            max_queue_delay: SimDuration::from_millis(250),
            max_batch: 1,
        }
    }
}

/// The outcome of [`AdmissionController::assess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Admitted: the suffix starts at `start` and completes at `completion`.
    Admit {
        /// When the GPU frees up for this suffix.
        start: SimTime,
        /// Predicted completion time (`start` + scaled execution).
        completion: SimTime,
    },
    /// Rejected: the budget is exhausted; retry once the backlog drains.
    Reject {
        /// Predicted time until the current backlog completes.
        retry_after: SimDuration,
    },
}

/// The most recent admission, viewed as a batch other requests may join:
/// its compatibility bucket, when it runs, and how many members it has.
#[derive(Debug, Clone, Copy)]
struct OpenBatch {
    bucket: u64,
    start: SimTime,
    completion: SimTime,
    size: usize,
}

/// Tracks the server's predicted backlog and enforces the budget.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Completion times of admitted suffixes, oldest first.
    completions: VecDeque<SimTime>,
    /// The watermark: when the last admitted suffix completes.
    backlog_until: SimTime,
    /// The most recent admission, open for compatible joins until it is
    /// predicted to finish or a different admission closes it.
    open_batch: Option<OpenBatch>,
    admitted: u64,
    batched: u64,
    rejected: u64,
}

impl AdmissionController {
    /// A controller with the given budget and an empty backlog.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            completions: VecDeque::new(),
            backlog_until: SimTime::ZERO,
            open_batch: None,
            admitted: 0,
            batched: 0,
            rejected: 0,
        }
    }

    /// Assesses a request arriving at `now` whose suffix is predicted to
    /// execute for `scaled` (`k`-scaled) seconds. Admitting pushes the
    /// backlog watermark; rejecting leaves all state untouched except the
    /// rejection counter.
    pub fn assess(&mut self, now: SimTime, scaled: SimDuration) -> AdmissionDecision {
        // Bucket 0 with max_batch <= 1 can never join, so this is exactly
        // the per-request budget.
        self.assess_batched(now, scaled, 0)
    }

    /// [`AdmissionController::assess`] with batch-aware accounting: a
    /// request compatible with the still-pending open batch (same
    /// `bucket`, batch under [`AdmissionConfig::max_batch`]) joins it —
    /// it is admitted at the batch's predicted start/completion and counts
    /// against `max_inflight`, but the backlog watermark does not advance,
    /// because the workers execute the whole batch as one occupancy.
    pub fn assess_batched(
        &mut self,
        now: SimTime,
        scaled: SimDuration,
        bucket: u64,
    ) -> AdmissionDecision {
        self.prune(now);
        if let Some(open) = self.open_batch {
            // A batch predicted to have finished can no longer be joined.
            if open.completion <= now {
                self.open_batch = None;
            } else if open.bucket == bucket && open.size < self.config.max_batch.max(1) {
                if self.completions.len() >= self.config.max_inflight {
                    self.rejected += 1;
                    return AdmissionDecision::Reject {
                        retry_after: self.backlog_until.since(now),
                    };
                }
                // Joining rides the already-budgeted execution: no queue-
                // delay check (the batch opener passed it) and no backlog
                // push. While a batch is open no other admission has
                // happened, so its completion is still the newest entry
                // and the completions deque stays sorted.
                self.open_batch = Some(OpenBatch {
                    size: open.size + 1,
                    ..open
                });
                self.completions.push_back(open.completion);
                self.admitted += 1;
                self.batched += 1;
                return AdmissionDecision::Admit {
                    start: open.start,
                    completion: open.completion,
                };
            }
        }
        let queue_delay = self.backlog_until.since(now);
        if self.completions.len() >= self.config.max_inflight
            || queue_delay > self.config.max_queue_delay
        {
            self.rejected += 1;
            return AdmissionDecision::Reject {
                retry_after: queue_delay,
            };
        }
        let start = now.max(self.backlog_until);
        let completion = start + scaled;
        self.backlog_until = completion;
        self.completions.push_back(completion);
        self.admitted += 1;
        self.open_batch = Some(OpenBatch {
            bucket,
            start,
            completion,
            size: 1,
        });
        AdmissionDecision::Admit { start, completion }
    }

    /// Number of suffixes still queued or executing at `now`.
    pub fn inflight(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.completions.len()
    }

    /// Total requests admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Of the admitted requests, how many joined an already-open batch
    /// (and therefore did not push the backlog watermark).
    #[must_use]
    pub fn batched(&self) -> u64 {
        self.batched
    }

    /// Total requests rejected so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Drops completions that have already finished by `now`.
    fn prune(&mut self, now: SimTime) {
        while matches!(self.completions.front(), Some(&c) if c <= now) {
            self.completions.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn unbounded_admits_everything() {
        let mut ctl = AdmissionController::new(AdmissionConfig::unbounded());
        for i in 0..1000 {
            let d = ctl.assess(at(0), SimDuration::from_millis(10 + i));
            assert!(matches!(d, AdmissionDecision::Admit { .. }));
        }
        assert_eq!(ctl.admitted(), 1000);
        assert_eq!(ctl.rejected(), 0);
    }

    #[test]
    fn inflight_cap_rejects_then_recovers() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 2,
            max_queue_delay: SimDuration::from_secs(1000),
            max_batch: 1,
        });
        assert!(matches!(
            ctl.assess(at(0), SimDuration::from_millis(50)),
            AdmissionDecision::Admit { .. }
        ));
        assert!(matches!(
            ctl.assess(at(0), SimDuration::from_millis(50)),
            AdmissionDecision::Admit { .. }
        ));
        // Budget full at t=0.
        let d = ctl.assess(at(0), SimDuration::from_millis(50));
        assert!(matches!(d, AdmissionDecision::Reject { .. }));
        // By t=200ms both admitted suffixes (50ms + 50ms serial) are done.
        assert_eq!(ctl.inflight(at(200)), 0);
        assert!(matches!(
            ctl.assess(at(200), SimDuration::from_millis(50)),
            AdmissionDecision::Admit { .. }
        ));
        assert_eq!(ctl.admitted(), 3);
        assert_eq!(ctl.rejected(), 1);
    }

    #[test]
    fn queue_delay_cap_rejects_with_retry_after() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: usize::MAX,
            max_queue_delay: SimDuration::from_millis(100),
            max_batch: 1,
        });
        // One long suffix: backlog runs 0..=300ms.
        ctl.assess(at(0), SimDuration::from_millis(300));
        // At t=0 queue delay is 300ms > 100ms: reject, retry in 300ms.
        match ctl.assess(at(0), SimDuration::from_millis(10)) {
            AdmissionDecision::Reject { retry_after } => {
                assert_eq!(retry_after, SimDuration::from_millis(300));
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // At t=250ms only 50ms of backlog remains: admit, queued behind it.
        match ctl.assess(at(250), SimDuration::from_millis(10)) {
            AdmissionDecision::Admit { start, completion } => {
                assert_eq!(start, at(300));
                assert_eq!(completion, at(310));
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn zero_inflight_budget_rejects_all() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 0,
            max_queue_delay: SimDuration::from_secs(1000),
            max_batch: 1,
        });
        for _ in 0..5 {
            assert!(matches!(
                ctl.assess(at(0), SimDuration::from_millis(1)),
                AdmissionDecision::Reject { .. }
            ));
        }
        assert_eq!(ctl.rejected(), 5);
        assert_eq!(ctl.admitted(), 0);
    }

    #[test]
    fn rejection_leaves_backlog_untouched() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 1,
            max_queue_delay: SimDuration::from_secs(1000),
            max_batch: 1,
        });
        let first = ctl.assess(at(0), SimDuration::from_millis(80));
        let AdmissionDecision::Admit { completion, .. } = first else {
            panic!("first request must be admitted");
        };
        ctl.assess(at(0), SimDuration::from_millis(80)); // rejected
        assert_eq!(ctl.inflight(at(0)), 1);
        // The backlog still drains at the original completion time.
        assert_eq!(ctl.inflight(completion), 0);
    }

    #[test]
    fn compatible_requests_join_the_open_batch_without_backlog_growth() {
        let mut ctl = AdmissionController::new(AdmissionConfig::unbounded().with_max_batch(4));
        let AdmissionDecision::Admit { start, completion } =
            ctl.assess_batched(at(0), SimDuration::from_millis(40), 3)
        else {
            panic!("opener admitted");
        };
        // Three joiners ride the same predicted execution: identical
        // start/completion, no backlog extension.
        for _ in 0..3 {
            match ctl.assess_batched(at(0), SimDuration::from_millis(40), 3) {
                AdmissionDecision::Admit {
                    start: s,
                    completion: c,
                } => assert_eq!((s, c), (start, completion)),
                other => panic!("expected join, got {other:?}"),
            }
        }
        assert_eq!(ctl.admitted(), 4);
        assert_eq!(ctl.batched(), 3);
        // The batch is full: the fifth compatible request opens a new one
        // queued behind the first.
        match ctl.assess_batched(at(0), SimDuration::from_millis(40), 3) {
            AdmissionDecision::Admit { start: s, .. } => assert_eq!(s, completion),
            other => panic!("expected a fresh batch, got {other:?}"),
        }
        assert_eq!(ctl.batched(), 3, "the opener of a new batch is not batched");
    }

    #[test]
    fn incompatible_bucket_closes_the_batch() {
        let mut ctl = AdmissionController::new(AdmissionConfig::unbounded().with_max_batch(8));
        ctl.assess_batched(at(0), SimDuration::from_millis(40), 1);
        // A different bucket queues serially and becomes the open batch.
        let AdmissionDecision::Admit { start, .. } =
            ctl.assess_batched(at(0), SimDuration::from_millis(40), 2)
        else {
            panic!("admitted");
        };
        assert_eq!(start, at(40), "queued behind the first batch");
        // The original bucket can no longer join its (closed) batch.
        let AdmissionDecision::Admit { start, .. } =
            ctl.assess_batched(at(0), SimDuration::from_millis(40), 1)
        else {
            panic!("admitted");
        };
        assert_eq!(start, at(80));
        assert_eq!(ctl.batched(), 0);
    }

    #[test]
    fn joining_still_counts_against_max_inflight() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 2,
            max_queue_delay: SimDuration::from_secs(1000),
            max_batch: 8,
        });
        ctl.assess_batched(at(0), SimDuration::from_millis(50), 0);
        assert!(matches!(
            ctl.assess_batched(at(0), SimDuration::from_millis(50), 0),
            AdmissionDecision::Admit { .. }
        ));
        // Batch-compatible, but the inflight budget is spent.
        assert!(matches!(
            ctl.assess_batched(at(0), SimDuration::from_millis(50), 0),
            AdmissionDecision::Reject { .. }
        ));
        assert_eq!((ctl.admitted(), ctl.batched(), ctl.rejected()), (2, 1, 1));
    }

    #[test]
    fn a_finished_batch_cannot_be_joined() {
        let mut ctl = AdmissionController::new(AdmissionConfig::unbounded().with_max_batch(8));
        ctl.assess_batched(at(0), SimDuration::from_millis(40), 5);
        // Arriving after the batch's predicted completion: a fresh batch
        // starting at `now`, not a join at the stale start time.
        match ctl.assess_batched(at(100), SimDuration::from_millis(40), 5) {
            AdmissionDecision::Admit { start, .. } => assert_eq!(start, at(100)),
            other => panic!("expected admit, got {other:?}"),
        }
        assert_eq!(ctl.batched(), 0);
    }

    #[test]
    fn max_batch_one_matches_unbatched_assess_exactly() {
        let cfg = AdmissionConfig {
            max_inflight: 3,
            max_queue_delay: SimDuration::from_millis(120),
            max_batch: 1,
        };
        let mut batched = AdmissionController::new(cfg);
        let mut plain = AdmissionController::new(cfg);
        for i in 0..40u64 {
            let now = at(i * 17 % 300);
            let cost = SimDuration::from_millis(10 + i % 90);
            assert_eq!(
                batched.assess_batched(now, cost, i % 3),
                plain.assess(now, cost),
                "step {i}"
            );
        }
        assert_eq!(batched.admitted(), plain.admitted());
        assert_eq!(batched.rejected(), plain.rejected());
        assert_eq!(batched.batched(), 0);
    }
}

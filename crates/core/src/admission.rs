//! Server-side admission control: a bounded pending-work budget.
//!
//! The paper's edge server accepts every `OffloadRequest` unconditionally;
//! under a load spike that just grows the queue and degrades *every*
//! client. Classic SLO-driven serving systems (Clipper, Clockwork) instead
//! reject work whose predicted completion would blow the budget — and
//! LoADPart's per-partition latency models plus the load factor `k` give
//! the server exactly the signal needed to predict completion times.
//!
//! [`AdmissionController`] keeps a backlog watermark: each admitted suffix
//! occupies the (single, FIFO) GPU from `max(now, backlog_until)` for its
//! `k`-scaled predicted execution time. A new request is rejected when
//! either
//!
//! * the number of in-flight suffixes has reached
//!   [`AdmissionConfig::max_inflight`], or
//! * the predicted queue delay (`backlog_until - now`) exceeds
//!   [`AdmissionConfig::max_queue_delay`].
//!
//! A rejection carries `retry_after` — the time until the backlog drains —
//! so the client can piggyback it into its next decision.

use std::collections::VecDeque;

use lp_sim::{SimDuration, SimTime};

/// The pending-work budget for one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum number of suffixes queued or executing at once. `0` rejects
    /// every request (useful for forcing the shed path in tests).
    pub max_inflight: usize,
    /// Maximum predicted queue delay before a new suffix would start.
    pub max_queue_delay: SimDuration,
}

impl AdmissionConfig {
    /// A budget that never rejects — the pre-admission-control behaviour,
    /// used so the serving loops have one uniform code path.
    #[must_use]
    pub fn unbounded() -> Self {
        AdmissionConfig {
            max_inflight: usize::MAX,
            // The largest representable duration: `from_secs` here would
            // overflow the nanosecond representation (a debug-build panic).
            max_queue_delay: SimDuration::from_nanos(u64::MAX),
        }
    }
}

impl Default for AdmissionConfig {
    /// A small default budget: 4 in-flight suffixes, 250 ms queue delay.
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 4,
            max_queue_delay: SimDuration::from_millis(250),
        }
    }
}

/// The outcome of [`AdmissionController::assess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Admitted: the suffix starts at `start` and completes at `completion`.
    Admit {
        /// When the GPU frees up for this suffix.
        start: SimTime,
        /// Predicted completion time (`start` + scaled execution).
        completion: SimTime,
    },
    /// Rejected: the budget is exhausted; retry once the backlog drains.
    Reject {
        /// Predicted time until the current backlog completes.
        retry_after: SimDuration,
    },
}

/// Tracks the server's predicted backlog and enforces the budget.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Completion times of admitted suffixes, oldest first.
    completions: VecDeque<SimTime>,
    /// The watermark: when the last admitted suffix completes.
    backlog_until: SimTime,
    admitted: u64,
    rejected: u64,
}

impl AdmissionController {
    /// A controller with the given budget and an empty backlog.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            completions: VecDeque::new(),
            backlog_until: SimTime::ZERO,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Assesses a request arriving at `now` whose suffix is predicted to
    /// execute for `scaled` (`k`-scaled) seconds. Admitting pushes the
    /// backlog watermark; rejecting leaves all state untouched except the
    /// rejection counter.
    pub fn assess(&mut self, now: SimTime, scaled: SimDuration) -> AdmissionDecision {
        self.prune(now);
        let queue_delay = self.backlog_until.since(now);
        if self.completions.len() >= self.config.max_inflight
            || queue_delay > self.config.max_queue_delay
        {
            self.rejected += 1;
            return AdmissionDecision::Reject {
                retry_after: queue_delay,
            };
        }
        let start = now.max(self.backlog_until);
        let completion = start + scaled;
        self.backlog_until = completion;
        self.completions.push_back(completion);
        self.admitted += 1;
        AdmissionDecision::Admit { start, completion }
    }

    /// Number of suffixes still queued or executing at `now`.
    pub fn inflight(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.completions.len()
    }

    /// Total requests admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total requests rejected so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Drops completions that have already finished by `now`.
    fn prune(&mut self, now: SimTime) {
        while matches!(self.completions.front(), Some(&c) if c <= now) {
            self.completions.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn unbounded_admits_everything() {
        let mut ctl = AdmissionController::new(AdmissionConfig::unbounded());
        for i in 0..1000 {
            let d = ctl.assess(at(0), SimDuration::from_millis(10 + i));
            assert!(matches!(d, AdmissionDecision::Admit { .. }));
        }
        assert_eq!(ctl.admitted(), 1000);
        assert_eq!(ctl.rejected(), 0);
    }

    #[test]
    fn inflight_cap_rejects_then_recovers() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 2,
            max_queue_delay: SimDuration::from_secs(1000),
        });
        assert!(matches!(
            ctl.assess(at(0), SimDuration::from_millis(50)),
            AdmissionDecision::Admit { .. }
        ));
        assert!(matches!(
            ctl.assess(at(0), SimDuration::from_millis(50)),
            AdmissionDecision::Admit { .. }
        ));
        // Budget full at t=0.
        let d = ctl.assess(at(0), SimDuration::from_millis(50));
        assert!(matches!(d, AdmissionDecision::Reject { .. }));
        // By t=200ms both admitted suffixes (50ms + 50ms serial) are done.
        assert_eq!(ctl.inflight(at(200)), 0);
        assert!(matches!(
            ctl.assess(at(200), SimDuration::from_millis(50)),
            AdmissionDecision::Admit { .. }
        ));
        assert_eq!(ctl.admitted(), 3);
        assert_eq!(ctl.rejected(), 1);
    }

    #[test]
    fn queue_delay_cap_rejects_with_retry_after() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: usize::MAX,
            max_queue_delay: SimDuration::from_millis(100),
        });
        // One long suffix: backlog runs 0..=300ms.
        ctl.assess(at(0), SimDuration::from_millis(300));
        // At t=0 queue delay is 300ms > 100ms: reject, retry in 300ms.
        match ctl.assess(at(0), SimDuration::from_millis(10)) {
            AdmissionDecision::Reject { retry_after } => {
                assert_eq!(retry_after, SimDuration::from_millis(300));
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // At t=250ms only 50ms of backlog remains: admit, queued behind it.
        match ctl.assess(at(250), SimDuration::from_millis(10)) {
            AdmissionDecision::Admit { start, completion } => {
                assert_eq!(start, at(300));
                assert_eq!(completion, at(310));
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn zero_inflight_budget_rejects_all() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 0,
            max_queue_delay: SimDuration::from_secs(1000),
        });
        for _ in 0..5 {
            assert!(matches!(
                ctl.assess(at(0), SimDuration::from_millis(1)),
                AdmissionDecision::Reject { .. }
            ));
        }
        assert_eq!(ctl.rejected(), 5);
        assert_eq!(ctl.admitted(), 0);
    }

    #[test]
    fn rejection_leaves_backlog_untouched() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 1,
            max_queue_delay: SimDuration::from_secs(1000),
        });
        let first = ctl.assess(at(0), SimDuration::from_millis(80));
        let AdmissionDecision::Admit { completion, .. } = first else {
            panic!("first request must be admitted");
        };
        ctl.assess(at(0), SimDuration::from_millis(80)); // rejected
        assert_eq!(ctl.inflight(at(0)), 1);
        // The backlog still drains at the original completion time.
        assert_eq!(ctl.inflight(completion), 0);
    }
}

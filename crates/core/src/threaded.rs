//! A threaded client/server runtime speaking the wire [`protocol`](crate::protocol).
//!
//! The paper's implementation runs the offloading main thread and the
//! runtime-profiler thread concurrently on the device, and the offloading
//! service plus a GPU-utilization monitor on the server (§IV). This module
//! reproduces that process structure with real OS threads and channels:
//!
//! * the **server thread** owns the suffix partition cache, executes
//!   offloaded suffixes (simulated durations from the latency models), and
//!   answers load queries from its [`LoadFactorTracker`];
//! * the **client** is the [`OffloadEngine`] composed with the wire
//!   backends ([`WireBackend`]/[`WireTransport`]): Algorithm 1 per request,
//!   [`Message::OffloadRequest`]-framed uploads, probe frames and load
//!   queries on the profiler cadence;
//! * time is logical — the client's clock advances one profiler period per
//!   request, so every request runs the periodic refresh.
//!
//! Tests are deterministic, but the concurrency — shared caches behind
//! locks, `std::sync::mpsc` channels, graceful shutdown — is real.

use crate::baselines::Policy;
use crate::cache::PartitionCache;
use crate::engine::backends::{NullDevice, WireBackend, WireTransport};
use crate::engine::{EngineConfig, InferenceRecord, OffloadEngine};
use crate::protocol::{Message, ProtocolError};
use bytes::Bytes;
use lp_graph::ComputationGraph;
use lp_profiler::{LoadFactorTracker, PredictionModels};
use lp_sim::{SimDuration, SimTime};
use std::sync::mpsc::{channel, Receiver, RecvError, SendError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Handle to a running offloading server thread.
#[derive(Debug)]
pub struct ServerHandle {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    join: Option<JoinHandle<u64>>,
}

/// Spawns the edge-server thread for one DNN.
///
/// `k_factor` is the load factor the server's environment currently
/// exhibits (in the full co-simulation it emerges from GPU queueing; here
/// it is injected so threaded tests are deterministic) — the server's
/// tracker still *measures* it from the observed/predicted ratio, which is
/// the §III-C mechanism.
#[must_use]
pub fn spawn_server(
    graph: ComputationGraph,
    edge_models: PredictionModels,
    k_factor: f64,
) -> ServerHandle {
    let (client_tx, server_rx) = channel::<Bytes>();
    let (server_tx, client_rx) = channel::<Bytes>();
    let cache = Arc::new(PartitionCache::new());
    let tracker = Arc::new(Mutex::new(LoadFactorTracker::new(SimDuration::from_secs(
        5,
    ))));
    let join = std::thread::spawn(move || {
        let mut served = 0u64;
        let mut now = SimTime::ZERO;
        while let Ok(frame) = server_rx.recv() {
            let msg = match Message::decode(frame) {
                Ok(m) => m,
                Err(ProtocolError::Truncated | ProtocolError::BadVersion(_))
                | Err(ProtocolError::UnknownTag(_)) => continue, // drop bad frames
            };
            match msg {
                Message::OffloadRequest {
                    request_id,
                    partition_point,
                    payload: _payload,
                } => {
                    let p = partition_point as usize;
                    // Build or fetch the suffix graph (Figure 5).
                    let _partition = cache
                        .get_or_partition(&graph, p.min(graph.len()))
                        .expect("p in range");
                    // Execute the suffix: predicted time scaled by the
                    // environment's load factor.
                    let predicted = predicted_suffix(&edge_models, &graph, p);
                    let observed = predicted.scale(k_factor);
                    now += observed + SimDuration::from_millis(100);
                    tracker
                        .lock()
                        .expect("lock poisoned")
                        .record(now, observed, predicted);
                    served += 1;
                    let resp = Message::OffloadResponse {
                        request_id,
                        server_time_us: observed.as_micros_f64().round() as u64,
                        payload: Bytes::from(vec![0u8; graph.output().size_bytes() as usize]),
                    };
                    if server_tx.send(resp.encode()).is_err() {
                        break;
                    }
                }
                Message::LoadQuery => {
                    let k = tracker.lock().expect("lock poisoned").k_at(now);
                    let reply = Message::LoadReply {
                        k_micro: Message::k_to_micro(k),
                    };
                    if server_tx.send(reply.encode()).is_err() {
                        break;
                    }
                }
                Message::Probe { .. } => {
                    if server_tx.send(Message::ProbeAck.encode()).is_err() {
                        break;
                    }
                }
                Message::Shutdown => break,
                // Server never receives responses/replies/acks.
                Message::OffloadResponse { .. } | Message::LoadReply { .. } | Message::ProbeAck => {
                }
            }
        }
        served
    });
    ServerHandle {
        tx: client_tx,
        rx: client_rx,
        join: Some(join),
    }
}

fn predicted_suffix(models: &PredictionModels, graph: &ComputationGraph, p: usize) -> SimDuration {
    if p >= graph.len() {
        SimDuration::ZERO
    } else {
        models.predict_range(graph, p + 1, graph.len())
    }
}

impl ServerHandle {
    /// Sends a raw frame to the server (used by the client and by
    /// fault-injection tests).
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited.
    pub fn send_frame(&self, frame: Bytes) -> Result<(), SendError<Bytes>> {
        self.tx.send(frame)
    }

    /// Receives the next frame from the server.
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited and drained.
    pub fn recv_frame(&self) -> Result<Bytes, RecvError> {
        self.rx.recv()
    }

    /// Shuts the server down and returns how many offload requests it
    /// served.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Message::Shutdown.encode());
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("server thread healthy")
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.tx.send(Message::Shutdown.encode());
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// A threaded offloading client for one DNN: the [`OffloadEngine`] over
/// the wire backends.
#[derive(Debug)]
pub struct ThreadedClient {
    engine: OffloadEngine,
    now: SimTime,
}

impl ThreadedClient {
    /// Builds the client with both trained model bundles.
    ///
    /// # Panics
    ///
    /// Panics if the default engine configuration is invalid (it is not).
    #[must_use]
    pub fn new(
        graph: ComputationGraph,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
    ) -> Self {
        let engine = OffloadEngine::new(
            graph,
            Policy::LoadPart,
            user_models,
            edge_models,
            0,
            EngineConfig::default(),
        )
        .expect("default config valid");
        Self {
            engine,
            now: SimTime::ZERO,
        }
    }

    /// The underlying engine (solver, profile, caches).
    #[must_use]
    pub fn engine(&self) -> &OffloadEngine {
        &self.engine
    }

    /// Queries the server for the current load factor and caches it — the
    /// explicit runtime-profiler action.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] on a malformed reply.
    ///
    /// # Panics
    ///
    /// Panics if the server thread is gone.
    pub fn refresh_k(&mut self, server: &ServerHandle) -> Result<f64, ProtocolError> {
        let mut backend = WireBackend { server };
        self.engine.refresh_k(self.now, &mut backend)
    }

    /// Runs one inference request end to end over the protocol.
    ///
    /// The client's logical clock advances one profiler period per
    /// request, so the periodic refresh (probe frame + load query) fires
    /// every time.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] on malformed frames.
    ///
    /// # Panics
    ///
    /// Panics if the server thread is gone.
    pub fn infer(
        &mut self,
        server: &ServerHandle,
        bandwidth_mbps: f64,
    ) -> Result<InferenceRecord, ProtocolError> {
        self.now += self.engine.config().profiler_period;
        self.engine.profile_mut().inject_bandwidth(bandwidth_mbps);
        let mut device = NullDevice;
        let mut backend = WireBackend { server };
        let mut transport = WireTransport { server };
        self.engine
            .run(self.now, &mut device, &mut backend, &mut transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| crate::system::trained_models(150, 42))
    }

    #[test]
    fn offload_round_trip_over_threads() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("protocol ok");
        assert!(r.p < 27, "should offload at 8 Mbps");
        assert!(r.uploaded_bytes > 0);
        assert!(r.server > SimDuration::ZERO);
        assert_eq!(server.shutdown(), 1);
    }

    #[test]
    fn load_query_reflects_server_contention() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        // Server whose environment stretches executions 6x.
        let server = spawn_server(graph.clone(), edge.clone(), 6.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        // Before any offload the tracker is empty: k = 1.
        assert_eq!(client.refresh_k(&server).expect("ok"), 1.0);
        let p_before = client.infer(&server, 8.0).expect("ok").p;
        // A few offloads populate the tracker; k should approach 6.
        for _ in 0..4 {
            client.infer(&server, 8.0).expect("ok");
        }
        let k = client.refresh_k(&server).expect("ok");
        assert!((5.0..7.0).contains(&k), "k={k}");
        // And the next decision moves device-ward (or stays).
        let p_after = client.infer(&server, 8.0).expect("ok").p;
        assert!(p_after >= p_before, "{p_before} -> {p_after}");
        server.shutdown();
    }

    #[test]
    fn local_decisions_skip_the_wire() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 0.05).expect("ok");
        assert_eq!(r.p, 27);
        assert_eq!(r.uploaded_bytes, 0);
        assert_eq!(server.shutdown(), 0, "no offload requests should arrive");
    }

    #[test]
    fn server_drops_garbage_frames() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        // Garbage, truncated and wrong-version frames must not kill it.
        server
            .send_frame(Bytes::from_static(b"\xffgarbage"))
            .expect("alive");
        server.send_frame(Bytes::new()).expect("alive");
        server
            .send_frame(Bytes::from_static(&[9, 1, 2, 3]))
            .expect("alive");
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("still serving");
        assert!(r.server > SimDuration::ZERO);
        assert_eq!(server.shutdown(), 1);
    }

    #[test]
    fn probes_are_acknowledged() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        server
            .send_frame(
                Message::Probe {
                    payload: Bytes::from(vec![0u8; 1024]),
                }
                .encode(),
            )
            .expect("alive");
        let ack = Message::decode(server.recv_frame().expect("alive")).expect("valid");
        assert_eq!(ack, Message::ProbeAck);
        server.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        drop(server); // must not hang or panic
    }

    #[test]
    fn request_ids_are_sequential() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        for expect in 0..3u64 {
            let r = client.infer(&server, 8.0).expect("ok");
            assert_eq!(r.request_id, expect);
        }
        server.shutdown();
    }
}

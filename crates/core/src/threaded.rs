//! A threaded client/server runtime speaking the wire [`protocol`](crate::protocol).
//!
//! The paper's implementation runs the offloading main thread and the
//! runtime-profiler thread concurrently on the device, and the offloading
//! service plus a GPU-utilization monitor on the server (§IV). This module
//! reproduces that process structure with real OS threads and channels:
//!
//! * the **server thread** owns the suffix partition cache, executes
//!   offloaded suffixes (simulated durations from the latency models), and
//!   answers load queries from its [`LoadFactorTracker`];
//! * the **client** is the [`OffloadEngine`] composed with the wire
//!   backends ([`WireBackend`]/[`WireTransport`]): Algorithm 1 per request,
//!   [`Message::OffloadRequest`]-framed uploads, probe frames and load
//!   queries on the profiler cadence;
//! * time is logical — the client's clock advances one profiler period per
//!   request, and the server's clock advances a fixed tick per **received
//!   frame** (plus the observed execution time per offload), so load-query
//!   handling and tracker-window expiry see a moving clock even when the
//!   client only queries.
//!
//! Every client-side wire operation is **deadline-based** ([`FrameChannel`]
//! / [`ServerHandle::recv_frame_timeout`]): a stalled or dead server yields
//! [`ProtocolError::Timeout`] / [`ProtocolError::Disconnected`] instead of
//! a hang or a panic, and the engine degrades to local inference. The
//! [`ServerFaultSpec`] passed to [`spawn_server_with_faults`] scripts
//! server crashes and stalls deterministically for tests and demos; the
//! client-side counterpart is [`crate::fault::FaultInjector`].
//!
//! Tests are deterministic, but the concurrency — shared caches behind
//! locks, `std::sync::mpsc` channels, graceful shutdown — is real.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
use crate::baselines::Policy;
use crate::cache::PartitionCache;
use crate::engine::backends::{NullDevice, WireBackend, WireTransport};
use crate::engine::{ConfigError, EngineConfig, InferenceRecord, OffloadEngine};
use crate::pool::zero_payload;
use crate::protocol::{Frame, Message, ProtocolError};
use crate::telemetry::{Counter, Gauge, Telemetry};
use bytes::Bytes;
use lp_graph::{ComputationGraph, Precision};
use lp_profiler::{LoadFactorTracker, PredictionModels};
use lp_sim::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The logical time the server charges for receiving any frame (the
/// inter-request spacing the runtime has always modelled).
const RECV_TICK: SimDuration = SimDuration::from_millis(100);

/// A bidirectional frame pipe the client-side wire backends speak over.
///
/// [`ServerHandle`] implements it directly;
/// [`crate::fault::FaultInjector`] wraps any implementation to inject
/// scripted faults between the engine and the real channel.
pub trait FrameChannel {
    /// Sends one frame toward the server.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] if the peer is gone.
    fn send(&self, frame: Bytes) -> Result<(), ProtocolError>;

    /// Receives the next frame, waiting no later than `deadline`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] when the deadline passes with no frame,
    /// [`ProtocolError::Disconnected`] when the peer is gone.
    fn recv_deadline(&self, deadline: Instant) -> Result<Bytes, ProtocolError>;

    /// Sends one header/payload [`Frame`] toward the server.
    ///
    /// The default flattens to the contiguous encoding and uses
    /// [`FrameChannel::send`], so existing implementations (fault
    /// injectors, test middleboxes) keep working unchanged; the in-process
    /// channel endpoints override this to pass both segments through
    /// zero-copy.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] if the peer is gone.
    fn send_split(&self, frame: Frame) -> Result<(), ProtocolError> {
        self.send(frame.flatten())
    }

    /// Receives the next frame as a header/payload [`Frame`], waiting no
    /// later than `deadline`. Defaults to wrapping
    /// [`FrameChannel::recv_deadline`]'s contiguous bytes.
    ///
    /// # Errors
    ///
    /// Same as [`FrameChannel::recv_deadline`].
    fn recv_split_deadline(&self, deadline: Instant) -> Result<Frame, ProtocolError> {
        self.recv_deadline(deadline).map(Frame::from_contiguous)
    }
}

/// Called after a reply frame lands on a session's channel, so a sleeping
/// transport (the socket mux shard parked in `poll(2)`) learns there is
/// egress work without polling its reply queues. In-process sessions pass
/// `None` — their receivers block on the channel directly.
pub type ReplyWaker = Arc<dyn Fn() + Send + Sync>;

/// Where one session's replies go: the reply channel plus the optional
/// wake callback fired after every delivery.
#[derive(Clone)]
struct ReplyRoute {
    tx: Sender<Frame>,
    waker: Option<ReplyWaker>,
}

impl ReplyRoute {
    fn new(tx: Sender<Frame>, waker: Option<ReplyWaker>) -> Self {
        Self { tx, waker }
    }

    /// Queues one reply and wakes the transport; `false` once the session's
    /// receive half is gone.
    fn deliver(&self, frame: Frame) -> bool {
        let delivered = self.tx.send(frame).is_ok();
        if let Some(waker) = &self.waker {
            waker();
        }
        delivered
    }
}

impl std::fmt::Debug for ReplyRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplyRoute")
            .field("waker", &self.waker.is_some())
            .finish_non_exhaustive()
    }
}

/// What flows into the server thread: control-plane client registrations
/// and data-plane frames, multiplexed over one channel so the frame loop
/// stays single-threaded and deterministic.
#[derive(Debug)]
enum ToServer {
    /// A new client session: route replies for `client` along this route.
    Connect(usize, ReplyRoute),
    /// A frame from `client`. Carried as a header/payload [`Frame`] so a
    /// multi-MB tensor payload crosses the channel as a reference-count
    /// bump, never a memcpy.
    Frame(usize, Frame),
    /// The transport observed `client` hang up: drop its reply route so
    /// the mux stops holding a dead channel (and its memory) forever.
    Disconnect(usize),
}

/// Handle to a running offloading server thread. The handle itself is
/// client session 0; [`ServerHandle::connect`] opens additional sessions
/// with their own reply channels (the multi-client chaos harness).
#[derive(Debug)]
pub struct ServerHandle {
    tx: Sender<ToServer>,
    rx: Receiver<Frame>,
    next_client: Arc<AtomicUsize>,
    join: Option<JoinHandle<u64>>,
}

/// A cloneable handle that opens new sessions on a running server without
/// borrowing its [`ServerHandle`] — the socket acceptor thread holds one
/// and mints a [`ClientConn`] per accepted connection.
#[derive(Debug, Clone)]
pub struct SessionConnector {
    tx: Sender<ToServer>,
    next_client: Arc<AtomicUsize>,
}

impl SessionConnector {
    /// Opens an additional client session with its own reply channel,
    /// exactly like [`ServerHandle::connect`].
    #[must_use]
    pub fn connect(&self) -> ClientConn {
        self.connect_with_waker(None)
    }

    /// Opens a session whose reply deliveries also fire `waker`, so an
    /// event-driven transport parked in `poll(2)` learns about egress work
    /// the moment the mux (or a suffix worker) queues a reply.
    #[must_use]
    pub fn connect_with_waker(&self, waker: Option<ReplyWaker>) -> ClientConn {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel::<Frame>();
        let _ = self
            .tx
            .send(ToServer::Connect(id, ReplyRoute::new(reply_tx, waker)));
        ClientConn {
            id,
            tx: self.tx.clone(),
            rx: reply_rx,
        }
    }
}

/// The send half of a split [`ClientConn`]: frames pushed here enter the
/// server mux under the session's id.
#[derive(Debug, Clone)]
pub struct SessionSender {
    id: usize,
    tx: Sender<ToServer>,
}

impl SessionSender {
    /// Forwards one frame into the server mux.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] once the server thread has exited.
    pub fn send(&self, frame: Frame) -> Result<(), ProtocolError> {
        self.tx
            .send(ToServer::Frame(self.id, frame))
            .map_err(|_| ProtocolError::Disconnected)
    }

    /// Tells the mux this session's peer hung up, so it drops the reply
    /// route instead of holding a dead channel for the server's lifetime.
    pub fn close(&self) {
        let _ = self.tx.send(ToServer::Disconnect(self.id));
    }
}

/// The receive half of a split [`ClientConn`]: the session's replies, in
/// server dispatch order.
#[derive(Debug)]
pub struct SessionReceiver {
    rx: Receiver<Frame>,
}

impl SessionReceiver {
    /// Blocks for the session's next reply frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] once the server side has dropped the
    /// session's reply channel (server exit).
    pub fn recv(&self) -> Result<Frame, ProtocolError> {
        self.rx.recv().map_err(|_| ProtocolError::Disconnected)
    }

    /// Non-blocking receive for event-driven transports: `Ok(None)` when no
    /// reply is queued right now.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] once the server side has dropped the
    /// session's reply channel (server exit).
    pub fn try_recv(&self) -> Result<Option<Frame>, ProtocolError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(ProtocolError::Disconnected),
        }
    }
}

/// One additional client session on a threaded server: frames sent here
/// carry the session id, and replies come back on this session's own
/// channel — concurrent clients never steal each other's responses.
#[derive(Debug)]
pub struct ClientConn {
    id: usize,
    tx: Sender<ToServer>,
    rx: Receiver<Frame>,
}

impl ClientConn {
    /// The server-assigned session id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Splits the session into independently owned send/receive halves, so
    /// the socket bridge can pump each direction from its own thread.
    #[must_use]
    pub fn split(self) -> (SessionSender, SessionReceiver) {
        (
            SessionSender {
                id: self.id,
                tx: self.tx,
            },
            SessionReceiver { rx: self.rx },
        )
    }
}

impl FrameChannel for ClientConn {
    fn send(&self, frame: Bytes) -> Result<(), ProtocolError> {
        self.send_split(Frame::from_contiguous(frame))
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<Bytes, ProtocolError> {
        self.recv_split_deadline(deadline).map(Frame::flatten)
    }

    fn send_split(&self, frame: Frame) -> Result<(), ProtocolError> {
        self.tx
            .send(ToServer::Frame(self.id, frame))
            .map_err(|_| ProtocolError::Disconnected)
    }

    fn recv_split_deadline(&self, deadline: Instant) -> Result<Frame, ProtocolError> {
        match self
            .rx
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
        {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(ProtocolError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ProtocolError::Disconnected),
        }
    }
}

/// The load environment a threaded server executes in: the factor by which
/// real executions are stretched relative to the latency-model prediction.
/// Shared and scriptable mid-run (an `Arc` of an atomic), so tests and the
/// chaos harness can drive load spikes while the server is serving. The
/// server's tracker still *measures* `k` from the observed/predicted
/// ratio — the §III-C mechanism — this only scripts the environment.
#[derive(Debug, Clone)]
pub struct LoadEnv {
    k_bits: Arc<AtomicU64>,
}

impl LoadEnv {
    /// An environment currently stretching executions by `k` (clamped to
    /// at least 1).
    #[must_use]
    pub fn new(k: f64) -> Self {
        Self {
            k_bits: Arc::new(AtomicU64::new(k.max(1.0).to_bits())),
        }
    }

    /// The current stretch factor.
    #[must_use]
    pub fn k(&self) -> f64 {
        f64::from_bits(self.k_bits.load(Ordering::Relaxed))
    }

    /// Re-scripts the environment (a load spike starting or ending).
    pub fn set_k(&self, k: f64) {
        self.k_bits.store(k.max(1.0).to_bits(), Ordering::Relaxed);
    }
}

/// A window of received-frame indices the server leaves unanswered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// First received-frame index (0-based) that goes unanswered.
    pub after_frames: u64,
    /// How many consecutive frames go unanswered.
    pub frames: u64,
}

impl StallWindow {
    fn covers(&self, idx: u64) -> bool {
        idx >= self.after_frames && idx < self.after_frames + self.frames
    }
}

/// Deterministic server-side fault script for [`spawn_server_with_faults`]:
/// crash and stall behaviour keyed by received-frame counts, so tests can
/// place a fault at an exact point in the session without wall-clock
/// randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerFaultSpec {
    /// Exit the server thread abruptly (simulated crash) once this many
    /// frames have been received; the frame crossing the threshold is not
    /// served, and both channels disconnect.
    pub crash_after_frames: Option<u64>,
    /// Drop the frames in this window silently — the server is alive but
    /// unresponsive, which is what a deadline must catch.
    pub stall: Option<StallWindow>,
    /// Panic the server thread once this many frames have been received —
    /// the teardown path [`ServerHandle::shutdown`] must report
    /// [`ProtocolError::ServerPanicked`] instead of propagating the panic
    /// into the client process.
    pub panic_after_frames: Option<u64>,
}

/// Spawns the edge-server thread for one DNN.
///
/// `k_factor` is the load factor the server's environment currently
/// exhibits (in the full co-simulation it emerges from GPU queueing; here
/// it is injected so threaded tests are deterministic) — the server's
/// tracker still *measures* it from the observed/predicted ratio, which is
/// the §III-C mechanism.
///
/// All spawn entry points accept the graph as either an owned
/// [`ComputationGraph`] or an `Arc<ComputationGraph>`; pass an `Arc` clone
/// to share one model between the server and every client engine.
#[must_use]
pub fn spawn_server(
    graph: impl Into<Arc<ComputationGraph>>,
    edge_models: PredictionModels,
    k_factor: f64,
) -> ServerHandle {
    spawn_server_with_faults(graph, edge_models, k_factor, ServerFaultSpec::default())
}

/// [`spawn_server`] plus a deterministic fault script ([`ServerFaultSpec`]).
#[must_use]
pub fn spawn_server_with_faults(
    graph: impl Into<Arc<ComputationGraph>>,
    edge_models: PredictionModels,
    k_factor: f64,
    faults: ServerFaultSpec,
) -> ServerHandle {
    spawn_server_instrumented(graph, edge_models, k_factor, faults, &Telemetry::disabled())
}

/// Pre-registered instrument handles for the server frame loop; `None`
/// when the spawning telemetry is disabled, so the loop pays one branch
/// per event.
struct ServerMetrics {
    frames: Counter,
    offloads: Counter,
    load_queries: Counter,
    probe_acks: Counter,
    bad_frames: Counter,
    stalled: Counter,
    rejected: Counter,
    /// Suffixes that executed as part of a coalesced batch of ≥ 2
    /// (incremented by the batch size, from the executing worker).
    batched_suffixes: Counter,
    /// Coalesced batch executions of ≥ 2 suffixes.
    suffix_batches: Counter,
    /// Offload requests whose upload tensor arrived at a narrow
    /// (non-fp32) precision and was dequantized server-side.
    quantized_offloads: Counter,
    k: Gauge,
}

impl ServerMetrics {
    fn register(telemetry: &Telemetry) -> Option<Self> {
        telemetry.registry().map(|reg| Self {
            frames: reg.counter("server.frames_total"),
            offloads: reg.counter("server.offloads_served_total"),
            load_queries: reg.counter("server.load_queries_total"),
            probe_acks: reg.counter("server.probe_acks_total"),
            bad_frames: reg.counter("server.bad_frames_total"),
            stalled: reg.counter("server.stalled_frames_total"),
            rejected: reg.counter("server.rejected_total"),
            batched_suffixes: reg.counter("server.batched_suffixes_total"),
            suffix_batches: reg.counter("server.suffix_batches_total"),
            quantized_offloads: reg.counter("server.quantized_offloads_total"),
            k: reg.gauge("server.k"),
        })
    }
}

/// [`spawn_server_with_faults`] plus an observability handle: the server
/// thread counts its frame traffic under `server.*` in `telemetry`'s
/// registry (shared with whatever client-side engine observes the same
/// run).
#[must_use]
pub fn spawn_server_instrumented(
    graph: impl Into<Arc<ComputationGraph>>,
    edge_models: PredictionModels,
    k_factor: f64,
    faults: ServerFaultSpec,
    telemetry: &Telemetry,
) -> ServerHandle {
    spawn_server_full(
        graph,
        edge_models,
        LoadEnv::new(k_factor),
        faults,
        None,
        telemetry,
    )
}

/// Tuning knobs for the serving hot path, consumed by
/// [`spawn_server_tuned`]. [`spawn_server_full`] uses the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerTuning {
    /// Size of the sharded suffix-execution worker pool. `0` runs every
    /// suffix inline on the mux thread — the pre-worker-pool serving path,
    /// kept as the benchmark baseline.
    pub workers: usize,
    /// Encode replies with the contiguous [`Message::encode`] (one memcpy
    /// of the payload per reply, plus a fresh payload allocation) instead
    /// of the zero-copy [`Message::to_frame`] path. Benchmark baseline.
    pub legacy_framing: bool,
    /// Wall-clock cost charged per admitted suffix execution, modelling
    /// the real GPU/CPU occupancy of the suffix on the serving thread.
    /// [`Duration::ZERO`] (the default everywhere outside the benchmark)
    /// keeps execution purely simulated, exactly the historical behaviour.
    pub suffix_cost: Duration,
    /// Maximum suffix jobs a worker coalesces into one batched GPU-sim
    /// execution (continuous batching): queued suffixes whose partition
    /// points fall in the same [`ServerTuning::batch_bucket`]-wide bucket
    /// share a single `suffix_cost` charge. `1` (or `0`) disables
    /// coalescing — one execution per request, the historical behaviour.
    /// Batching never reorders a session's replies; see the worker loop.
    pub max_batch: usize,
    /// Width of the partition-point bucket for batch compatibility: jobs
    /// batch together when `p / batch_bucket` matches (a real GPU batches
    /// suffixes starting at near-identical layers; an exact-`p` rule would
    /// fragment batches whenever clients' bandwidth estimates wobble by a
    /// layer). Also the bucket the batch-aware admission controller keys
    /// its open batch on.
    pub batch_bucket: usize,
}

impl Default for ServerTuning {
    fn default() -> Self {
        Self {
            workers: default_workers(),
            legacy_framing: false,
            suffix_cost: Duration::ZERO,
            max_batch: 16,
            batch_bucket: 4,
        }
    }
}

impl ServerTuning {
    /// The pre-PR serving path: inline execution on the mux thread with
    /// contiguous (copying) framing.
    #[must_use]
    pub fn single_threaded_legacy() -> Self {
        Self {
            workers: 0,
            legacy_framing: true,
            suffix_cost: Duration::ZERO,
            max_batch: 1,
            batch_bucket: 1,
        }
    }

    /// The bucket a partition point batches under (shared by the worker
    /// coalescing loop and batch-aware admission).
    #[must_use]
    fn bucket(&self, p: usize) -> u64 {
        (p / self.batch_bucket.max(1)) as u64
    }
}

/// Default worker-pool size: one worker per core, clamped to `2..=8` so
/// small runners still overlap sessions and large ones don't oversubscribe
/// a workload that is mostly per-session FIFO anyway.
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8))
}

/// The fully-general server spawn: a scriptable [`LoadEnv`], a
/// deterministic fault script, optional [admission control](crate::admission)
/// and telemetry. `None` for `admission` means the unbounded budget — the
/// pre-admission-control behaviour.
///
/// The server's logical clock advances `RECV_TICK` (100 ms) per received
/// frame;
/// execution time accumulates only in the admission controller's backlog
/// watermark, which is what the predicted queue delay (and therefore load
/// shedding) is computed from.
#[must_use]
pub fn spawn_server_full(
    graph: impl Into<Arc<ComputationGraph>>,
    edge_models: PredictionModels,
    env: LoadEnv,
    faults: ServerFaultSpec,
    admission: Option<AdmissionConfig>,
    telemetry: &Telemetry,
) -> ServerHandle {
    spawn_server_tuned(
        graph,
        edge_models,
        env,
        faults,
        admission,
        telemetry,
        ServerTuning::default(),
    )
}

/// What a shard worker does for one request. Either way the reply is
/// delivered from the worker, so a session's replies stay FIFO even when a
/// control reply chases an offload response still being built.
enum Job {
    /// Forward a reply the mux already built (control plane, rejections).
    Forward(Frame),
    /// Execute an admitted suffix: fetch/build the partition from the
    /// shared cache, charge the configured execution cost, frame the
    /// result tensor.
    Suffix {
        request_id: u64,
        server_time_us: u64,
        p: usize,
    },
}

/// The sharded suffix-execution pool behind the frame mux. Sessions map to
/// workers by `session_id % workers`, so one session's jobs — and therefore
/// its replies — are handled by one worker in arrival order, preserving the
/// per-session FIFO the single-threaded server provided. All stateful
/// accounting (clock, admission, tracker, fault script, metrics) stays on
/// the mux; workers only execute and reply.
///
/// # Continuous batching
///
/// When `max_batch > 1`, a worker that dequeues a suffix keeps draining its
/// queue (non-blocking) and coalesces further suffixes of the same
/// partition-point bucket into one batch, which then charges a single
/// `suffix_cost` — the GPU running the near-identical suffixes as one
/// batched launch. Replies are delivered in batch order. Per-session FIFO
/// survives because a control [`Job::Forward`] encountered mid-scan is
/// forwarded immediately *only* when its session has no suffix in the
/// batch being built (jobs of distinct sessions commute); a Forward whose
/// session is already batched — or any bucket-incompatible suffix — stops
/// the scan and is carried into the next iteration unreordered.
struct WorkerPool {
    txs: Vec<Sender<(usize, ReplyRoute, Job)>>,
    joins: Vec<JoinHandle<()>>,
    ctx: ExecContext,
}

/// Everything a worker (or the inline path) needs to execute a job.
#[derive(Clone)]
struct ExecContext {
    graph: Arc<ComputationGraph>,
    cache: Arc<PartitionCache>,
    tuning: ServerTuning,
    /// `server.batched_suffixes_total` / `server.suffix_batches_total`
    /// handles, incremented from the executing worker (`None` when
    /// telemetry is disabled).
    batched_suffixes: Option<Counter>,
    suffix_batches: Option<Counter>,
}

impl ExecContext {
    /// Executes one job to a wire-ready reply frame.
    fn execute(&self, job: Job) -> Frame {
        match job {
            Job::Forward(frame) => frame,
            Job::Suffix { .. } => {
                self.charge_suffix_cost();
                self.suffix_reply(job)
            }
        }
    }

    /// Models the suffix (or a coalesced batch of suffixes) occupying this
    /// serving thread for its execution time — what the worker pool
    /// overlaps across sessions, and what batching amortises.
    fn charge_suffix_cost(&self) {
        if !self.tuning.suffix_cost.is_zero() {
            std::thread::sleep(self.tuning.suffix_cost);
        }
    }

    /// Builds the reply frame for one admitted suffix, *without* charging
    /// the execution cost (the caller charges once per batch). Each job
    /// still fetches its own partition from the shared cache — bucketed
    /// batchmates may differ by a few layers.
    fn suffix_reply(&self, job: Job) -> Frame {
        let Job::Suffix {
            request_id,
            server_time_us,
            p,
        } = job
        else {
            unreachable!("suffix_reply only takes suffix jobs");
        };
        // Build or fetch the suffix graph (Figure 5).
        let _ = self
            .cache
            .get_or_partition(&self.graph, p.min(self.graph.len()))
            .expect("p in range");
        let out_bytes = self.graph.output().size_bytes() as usize;
        let reply = Message::OffloadResponse {
            request_id,
            server_time_us,
            payload: if self.tuning.legacy_framing {
                Bytes::from(vec![0u8; out_bytes])
            } else {
                zero_payload(out_bytes)
            },
        };
        self.frame(&reply)
    }

    /// Executes a coalesced batch of suffix jobs: one execution-cost
    /// charge, then every reply delivered in batch (= arrival) order.
    fn execute_suffix_batch(&self, batch: Vec<(usize, ReplyRoute, Job)>) {
        if batch.len() >= 2 {
            if let Some(c) = &self.suffix_batches {
                c.incr(1);
            }
            if let Some(c) = &self.batched_suffixes {
                c.incr(batch.len() as u64);
            }
        }
        self.charge_suffix_cost();
        for (_, route, job) in batch {
            // A dead client only loses its own reply.
            let _ = route.deliver(self.suffix_reply(job));
        }
    }

    /// Frames a reply message per the configured framing mode. Server
    /// replies carry at most one model-output tensor, far under the
    /// protocol's payload cap, so encoding cannot fail here.
    fn frame(&self, reply: &Message) -> Frame {
        if self.tuning.legacy_framing {
            Frame::from_contiguous(reply.encode().expect("server reply fits a frame"))
        } else {
            reply.to_frame().expect("server reply fits a frame")
        }
    }
}

impl WorkerPool {
    fn spawn(workers: usize, ctx: ExecContext) -> Self {
        let mut txs = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = channel::<(usize, ReplyRoute, Job)>();
            let worker_ctx = ctx.clone();
            let join = std::thread::Builder::new()
                .name(format!("loadpart-suffix-{shard}"))
                .spawn(move || Self::worker_loop(&worker_ctx, &rx))
                .expect("spawn suffix worker");
            txs.push(tx);
            joins.push(join);
        }
        Self { txs, joins, ctx }
    }

    /// One worker's continuous-batching loop; see the [`WorkerPool`] doc
    /// for the reordering argument.
    fn worker_loop(ctx: &ExecContext, rx: &Receiver<(usize, ReplyRoute, Job)>) {
        let max_batch = ctx.tuning.max_batch.max(1);
        // A job pulled off the queue that could not join the current batch;
        // it leads the next iteration so queue order is preserved.
        let mut carry: Option<(usize, ReplyRoute, Job)> = None;
        loop {
            let head = match carry.take() {
                Some(head) => head,
                None => match rx.recv() {
                    Ok(head) => head,
                    Err(_) => break,
                },
            };
            let (session, route, job) = head;
            let bucket = match &job {
                Job::Forward(_) => {
                    // Control-plane reply: deliver and move on. A dead
                    // client only loses its own reply.
                    let _ = route.deliver(ctx.execute(job));
                    continue;
                }
                Job::Suffix { p, .. } => ctx.tuning.bucket(*p),
            };
            let mut batch = vec![(session, route, job)];
            // Coalesce compatible queued suffixes, non-blocking: the batch
            // closes as soon as the queue runs dry, so a lone request never
            // waits for company (continuous, not time-windowed, batching).
            while batch.len() < max_batch {
                match rx.try_recv() {
                    Ok((s, r, j @ Job::Suffix { .. })) => {
                        let Job::Suffix { p, .. } = &j else {
                            unreachable!("matched suffix above");
                        };
                        if ctx.tuning.bucket(*p) == bucket {
                            batch.push((s, r, j));
                        } else {
                            carry = Some((s, r, j));
                            break;
                        }
                    }
                    Ok((s, r, j @ Job::Forward(_))) => {
                        if batch.iter().any(|(bs, _, _)| *bs == s) {
                            // This session already has a suffix in the
                            // batch; replying now would reorder it.
                            carry = Some((s, r, j));
                            break;
                        }
                        // Distinct sessions commute: answer the control
                        // frame immediately instead of behind the batch.
                        let _ = r.deliver(ctx.execute(j));
                    }
                    Err(_) => break,
                }
            }
            ctx.execute_suffix_batch(batch);
        }
    }

    /// Routes a job to `session`'s shard, or executes it inline when the
    /// pool is empty (the single-threaded baseline). Returns `false` when
    /// the session's reply channel is known dead (inline mode only; a
    /// sharded worker discovers that on its own).
    fn dispatch(&self, session: usize, route: &ReplyRoute, job: Job) -> bool {
        if self.txs.is_empty() {
            route.deliver(self.ctx.execute(job))
        } else {
            let shard = session % self.txs.len();
            // A worker that died mid-run (panicked job) drops its channel;
            // its sessions then time out client-side, which the engine
            // degrades on — and shutdown reports the panic.
            let _ = self.txs[shard].send((session, route.clone(), job));
            true
        }
    }

    /// Drains and joins the pool.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic on the caller (the mux thread), so
    /// [`ServerHandle::shutdown`] reports [`ProtocolError::ServerPanicked`]
    /// exactly as it does for a mux panic.
    fn join(self) {
        drop(self.txs);
        for join in self.joins {
            if join.join().is_err() {
                panic!("suffix worker panicked");
            }
        }
    }
}

/// [`spawn_server_full`] with explicit [`ServerTuning`] — the entry point
/// the serving benchmark uses to pit the legacy single-threaded path
/// against the worker pool under identical traffic.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn spawn_server_tuned(
    graph: impl Into<Arc<ComputationGraph>>,
    edge_models: PredictionModels,
    env: LoadEnv,
    faults: ServerFaultSpec,
    admission: Option<AdmissionConfig>,
    telemetry: &Telemetry,
    tuning: ServerTuning,
) -> ServerHandle {
    let graph: Arc<ComputationGraph> = graph.into();
    let metrics = ServerMetrics::register(telemetry);
    let (mux_tx, server_rx) = channel::<ToServer>();
    let (server_tx, client_rx) = channel::<Frame>();
    let cache = Arc::new(PartitionCache::new());
    let tracker = Arc::new(Mutex::new(LoadFactorTracker::new(SimDuration::from_secs(
        5,
    ))));
    let admission_cfg = admission.unwrap_or_else(AdmissionConfig::unbounded);
    let batched_suffixes = metrics.as_ref().map(|m| m.batched_suffixes.clone());
    let suffix_batches = metrics.as_ref().map(|m| m.suffix_batches.clone());
    let join = std::thread::spawn(move || {
        let pool = WorkerPool::spawn(
            tuning.workers,
            ExecContext {
                graph: Arc::clone(&graph),
                cache,
                tuning,
                batched_suffixes,
                suffix_batches,
            },
        );
        let mut admission = AdmissionController::new(admission_cfg);
        let mut replies: HashMap<usize, ReplyRoute> = HashMap::new();
        replies.insert(0, ReplyRoute::new(server_tx, None));
        let mut served = 0u64;
        let mut now = SimTime::ZERO;
        let mut received = 0u64;
        while let Ok(incoming) = server_rx.recv() {
            let (client, frame) = match incoming {
                // Control plane: register a reply route. No frame count,
                // no clock tick.
                ToServer::Connect(id, route) => {
                    replies.insert(id, route);
                    continue;
                }
                // Control plane: the transport saw the peer hang up.
                ToServer::Disconnect(id) => {
                    if id != 0 {
                        replies.remove(&id);
                    }
                    continue;
                }
                ToServer::Frame(id, frame) => (id, frame),
            };
            let idx = received;
            received += 1;
            if faults.crash_after_frames.is_some_and(|n| received > n) {
                // Simulated crash: exit without replying; dropping the
                // routes (and draining the pool) ends the session abruptly
                // on the client side.
                return served;
            }
            if faults.panic_after_frames.is_some_and(|n| received > n) {
                panic!("scripted server panic after {idx} frames");
            }
            if let Some(m) = &metrics {
                m.frames.incr(1);
            }
            // Receiving any frame advances the server's logical clock, so
            // load queries evaluate `k` at a moving instant and the
            // tracker window can expire for an idle-then-querying client.
            now += RECV_TICK;
            if faults.stall.is_some_and(|s| s.covers(idx)) {
                if let Some(m) = &metrics {
                    m.stalled.incr(1);
                }
                continue; // unresponsive: swallow the frame
            }
            let msg = match Message::decode_frame(frame) {
                Ok(m) => m,
                Err(_) => {
                    if let Some(m) = &metrics {
                        m.bad_frames.incr(1);
                    }
                    continue; // drop bad frames
                }
            };
            // Admission, tracker accounting and the serve counter happen
            // here at demux time — one budget, in frame-arrival order —
            // regardless of which worker executes the suffix.
            let job = match msg {
                Message::OffloadRequest {
                    request_id,
                    partition_point,
                    precision,
                    payload: _payload,
                } => {
                    let p = partition_point as usize;
                    if precision != Precision::Fp32 {
                        // The server dequantizes narrow uploads before the
                        // suffix runs; the emulated suffix cost is
                        // unchanged, so only the count is recorded.
                        if let Some(m) = &metrics {
                            m.quantized_offloads.incr(1);
                        }
                    }
                    // Predicted suffix time scaled by the environment's
                    // load factor: the signal admission control budgets.
                    let predicted = predicted_suffix(&edge_models, &graph, p);
                    let scaled = predicted.scale(env.k());
                    // Batch-aware admission: a request falling into the
                    // open batch's partition bucket rides its completion
                    // slot instead of growing the backlog (with the
                    // caller's `AdmissionConfig::max_batch` — default 1 —
                    // this is exactly the per-request budget).
                    match admission.assess_batched(now, scaled, tuning.bucket(p)) {
                        AdmissionDecision::Reject { retry_after } => {
                            if let Some(m) = &metrics {
                                m.rejected.incr(1);
                            }
                            // Piggyback the measured load factor so the
                            // shed client can pre-seed its profile.
                            let k = tracker.lock().unwrap_or_else(|e| e.into_inner()).k_at(now);
                            Job::Forward(pool.ctx.frame(&Message::Rejected {
                                request_id,
                                retry_after_us: retry_after.as_micros_f64().round() as u64,
                                k_micro: Message::k_to_micro(k),
                            }))
                        }
                        AdmissionDecision::Admit { completion, .. } => {
                            tracker
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .record(completion, scaled, predicted);
                            served += 1;
                            if let Some(m) = &metrics {
                                m.offloads.incr(1);
                            }
                            Job::Suffix {
                                request_id,
                                server_time_us: completion.since(now).as_micros_f64().round()
                                    as u64,
                                p,
                            }
                        }
                    }
                }
                Message::LoadQuery => {
                    let k = tracker.lock().unwrap_or_else(|e| e.into_inner()).k_at(now);
                    if let Some(m) = &metrics {
                        m.load_queries.incr(1);
                        m.k.set(k);
                    }
                    Job::Forward(pool.ctx.frame(&Message::LoadReply {
                        k_micro: Message::k_to_micro(k),
                    }))
                }
                Message::Probe { .. } => {
                    if let Some(m) = &metrics {
                        m.probe_acks.incr(1);
                    }
                    Job::Forward(pool.ctx.frame(&Message::ProbeAck))
                }
                Message::Shutdown => break,
                // Server never receives responses/replies/acks/rejections.
                Message::OffloadResponse { .. }
                | Message::LoadReply { .. }
                | Message::ProbeAck
                | Message::Rejected { .. } => continue,
            };
            // One dead client must not take the server down: drop its
            // route and keep serving the others.
            if let Some(route) = replies.get(&client) {
                if !pool.dispatch(client, route, job) {
                    replies.remove(&client);
                }
            }
        }
        // Drain in-flight suffixes before releasing the reply routes, so
        // every frame received before the shutdown is still answered.
        pool.join();
        served
    });
    ServerHandle {
        tx: mux_tx,
        rx: client_rx,
        next_client: Arc::new(AtomicUsize::new(1)),
        join: Some(join),
    }
}

fn predicted_suffix(models: &PredictionModels, graph: &ComputationGraph, p: usize) -> SimDuration {
    if p >= graph.len() {
        SimDuration::ZERO
    } else {
        models.predict_range(graph, p + 1, graph.len())
    }
}

impl ServerHandle {
    /// Sends a raw frame to the server as session 0 (used by the client
    /// and by fault-injection tests).
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited.
    pub fn send_frame(&self, frame: Bytes) -> Result<(), SendError<Bytes>> {
        self.tx
            .send(ToServer::Frame(0, Frame::from_contiguous(frame)))
            .map_err(|e| {
                let ToServer::Frame(_, frame) = e.0 else {
                    unreachable!("send_frame only wraps frames");
                };
                SendError(frame.flatten())
            })
    }

    /// Opens an additional client session with its own reply channel.
    /// Frames sent over the returned [`ClientConn`] are answered on that
    /// session's channel only, so concurrent clients never steal each
    /// other's responses.
    #[must_use]
    pub fn connect(&self) -> ClientConn {
        self.connector().connect()
    }

    /// A cloneable [`SessionConnector`] that keeps opening sessions after
    /// the handle itself has moved elsewhere (the socket acceptor thread).
    #[must_use]
    pub fn connector(&self) -> SessionConnector {
        SessionConnector {
            tx: self.tx.clone(),
            next_client: Arc::clone(&self.next_client),
        }
    }

    /// Waits for the server thread to exit on its own — that is, until some
    /// client sends [`Message::Shutdown`] — and returns how many offload
    /// requests it served. `loadpart serve` blocks here; unlike
    /// [`ServerHandle::shutdown`] no shutdown frame is injected locally.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ServerPanicked`] when the server thread panicked.
    pub fn wait(mut self) -> Result<u64, ProtocolError> {
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .map_err(|_| ProtocolError::ServerPanicked)
    }

    /// Receives the next frame from the server, blocking indefinitely.
    /// Client-side request paths must use [`Self::recv_frame_timeout`] (or
    /// the [`FrameChannel`] deadline API) instead, so a stalled server
    /// cannot hang them.
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited and drained.
    pub fn recv_frame(&self) -> Result<Bytes, RecvError> {
        self.rx.recv().map(Frame::flatten)
    }

    /// Receives the next frame from the server, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] when nothing arrives in time,
    /// [`ProtocolError::Disconnected`] when the server thread has exited
    /// and the channel drained.
    pub fn recv_frame_timeout(&self, timeout: Duration) -> Result<Bytes, ProtocolError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame.flatten()),
            Err(RecvTimeoutError::Timeout) => Err(ProtocolError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ProtocolError::Disconnected),
        }
    }

    /// Shuts the server down and returns how many offload requests it
    /// served. A panicked server thread is reported as
    /// [`ProtocolError::ServerPanicked`] instead of propagating the panic
    /// into the caller.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ServerPanicked`] when the server thread panicked.
    pub fn shutdown(mut self) -> Result<u64, ProtocolError> {
        let _ = self.send_frame(Message::Shutdown.encode().expect("no payload"));
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .map_err(|_| ProtocolError::ServerPanicked)
    }
}

impl FrameChannel for ServerHandle {
    fn send(&self, frame: Bytes) -> Result<(), ProtocolError> {
        self.send_frame(frame)
            .map_err(|_| ProtocolError::Disconnected)
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<Bytes, ProtocolError> {
        self.recv_frame_timeout(deadline.saturating_duration_since(Instant::now()))
    }

    fn send_split(&self, frame: Frame) -> Result<(), ProtocolError> {
        self.tx
            .send(ToServer::Frame(0, frame))
            .map_err(|_| ProtocolError::Disconnected)
    }

    fn recv_split_deadline(&self, deadline: Instant) -> Result<Frame, ProtocolError> {
        match self
            .rx
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
        {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(ProtocolError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ProtocolError::Disconnected),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let shutdown = Message::Shutdown.encode().expect("no payload");
        let _ = self
            .tx
            .send(ToServer::Frame(0, Frame::from_contiguous(shutdown)));
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// A threaded offloading client for one DNN: the [`OffloadEngine`] over
/// the wire backends.
#[derive(Debug)]
pub struct ThreadedClient {
    engine: OffloadEngine,
    now: SimTime,
}

impl ThreadedClient {
    /// Builds the client with both trained model bundles and the default
    /// engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the default engine configuration is invalid (it is not).
    #[must_use]
    pub fn new(
        graph: impl Into<Arc<ComputationGraph>>,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
    ) -> Self {
        Self::with_config(graph, user_models, edge_models, EngineConfig::default())
            .expect("default config valid")
    }

    /// Builds the client with an explicit engine configuration (fault
    /// tests shrink `io_timeout`/`retry_backoff` to keep deadlines fast).
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations with [`ConfigError`].
    pub fn with_config(
        graph: impl Into<Arc<ComputationGraph>>,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        let engine =
            OffloadEngine::new(graph, Policy::LoadPart, user_models, edge_models, 0, config)?;
        Ok(Self {
            engine,
            now: SimTime::ZERO,
        })
    }

    /// Builds the client around an externally supplied
    /// [`PartitionPolicy`](crate::policy::PartitionPolicy) — stateful
    /// learners included. The engine feeds the policy completed records
    /// through the guarded feedback hook, so wire faults that degrade a
    /// request to local execution never train the learner.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations with [`ConfigError`].
    pub fn with_policy(
        graph: impl Into<Arc<ComputationGraph>>,
        policy: Box<dyn crate::policy::PartitionPolicy>,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        let engine =
            OffloadEngine::with_policy(graph, policy, user_models, edge_models, 0, config)?;
        Ok(Self {
            engine,
            now: SimTime::ZERO,
        })
    }

    /// The underlying engine (solver, profile, caches).
    #[must_use]
    pub fn engine(&self) -> &OffloadEngine {
        &self.engine
    }

    /// Installs an observability handle on the underlying engine. Pass the
    /// same handle to [`spawn_server_instrumented`] to see client and
    /// server sides of one session in a single registry.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.engine.set_telemetry(telemetry);
    }

    /// The client's logical clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queries the server for the current load factor and caches it — the
    /// explicit runtime-profiler action.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] on a malformed reply, a timeout or a
    /// dead server.
    pub fn refresh_k<C: FrameChannel + ?Sized>(
        &mut self,
        server: &C,
    ) -> Result<f64, ProtocolError> {
        let mut backend = WireBackend {
            server,
            deadline: self.engine.config().io_timeout,
        };
        self.engine.refresh_k(self.now, &mut backend)
    }

    /// Runs one inference request end to end over the protocol.
    ///
    /// The client's logical clock advances one profiler period per
    /// request, so the periodic refresh (probe frame + load query) fires
    /// every time. Wire faults never panic or hang the client: exchanges
    /// are retried with backoff and, if the fault persists, the request
    /// completes locally (`fallback_local` set on the record) and the
    /// engine cools down before touching the wire again.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] only for failures the engine cannot
    /// absorb (none on the current degradation paths).
    pub fn infer<C: FrameChannel + ?Sized>(
        &mut self,
        server: &C,
        bandwidth_mbps: f64,
    ) -> Result<InferenceRecord, ProtocolError> {
        self.now += self.engine.config().profiler_period;
        self.engine.profile_mut().inject_bandwidth(bandwidth_mbps);
        let deadline = self.engine.config().io_timeout;
        let mut device = NullDevice;
        let mut backend = WireBackend { server, deadline };
        let mut transport = WireTransport { server, deadline };
        self.engine
            .run(self.now, &mut device, &mut backend, &mut transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use std::time::Duration;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| crate::system::trained_models(150, 42))
    }

    #[test]
    fn offload_round_trip_over_threads() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("protocol ok");
        assert!(r.p < 27, "should offload at 8 Mbps");
        assert!(r.uploaded_bytes > 0);
        assert!(r.server > SimDuration::ZERO);
        assert!(!r.fallback_local);
        assert_eq!(r.retries, 0);
        assert_eq!(server.shutdown().expect("clean shutdown"), 1);
    }

    #[test]
    fn load_query_reflects_server_contention() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        // Server whose environment stretches executions 6x.
        let server = spawn_server(graph.clone(), edge.clone(), 6.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        // Before any offload the tracker is empty: k = 1.
        assert_eq!(client.refresh_k(&server).expect("ok"), 1.0);
        let p_before = client.infer(&server, 8.0).expect("ok").p;
        // A few offloads populate the tracker; k should approach 6.
        for _ in 0..4 {
            client.infer(&server, 8.0).expect("ok");
        }
        let k = client.refresh_k(&server).expect("ok");
        assert!((5.0..7.0).contains(&k), "k={k}");
        // And the next decision moves device-ward (or stays).
        let p_after = client.infer(&server, 8.0).expect("ok").p;
        assert!(p_after >= p_before, "{p_before} -> {p_after}");
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn local_decisions_skip_the_wire() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 0.05).expect("ok");
        assert_eq!(r.p, 27);
        assert_eq!(r.uploaded_bytes, 0);
        assert_eq!(
            server.shutdown().expect("clean shutdown"),
            0,
            "no offload requests should arrive"
        );
    }

    #[test]
    fn server_drops_garbage_frames() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        // Garbage, truncated and wrong-version frames must not kill it.
        server
            .send_frame(Bytes::from_static(b"\xffgarbage"))
            .expect("alive");
        server.send_frame(Bytes::new()).expect("alive");
        server
            .send_frame(Bytes::from_static(&[9, 1, 2, 3]))
            .expect("alive");
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("still serving");
        assert!(r.server > SimDuration::ZERO);
        assert_eq!(server.shutdown().expect("clean shutdown"), 1);
    }

    #[test]
    fn probes_are_acknowledged() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        server
            .send_frame(
                Message::Probe {
                    payload: Bytes::from(vec![0u8; 1024]),
                }
                .encode()
                .expect("encodes"),
            )
            .expect("alive");
        let ack = Message::decode(server.recv_frame().expect("alive")).expect("valid");
        assert_eq!(ack, Message::ProbeAck);
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        drop(server); // must not hang or panic
    }

    #[test]
    fn request_ids_are_sequential() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        for expect in 0..3u64 {
            let r = client.infer(&server, 8.0).expect("ok");
            assert_eq!(r.request_id, expect);
        }
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        // Nothing was sent: a bounded wait must end in Timeout, not a hang.
        assert_eq!(
            server.recv_frame_timeout(Duration::from_millis(10)),
            Err(ProtocolError::Timeout)
        );
        // Kill the server thread; the channel now reports Disconnected.
        server
            .send_frame(Message::Shutdown.encode().expect("encodes"))
            .expect("alive");
        // Wait for the thread to exit by joining via a fresh handle scope.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            server.recv_frame_timeout(Duration::from_millis(10)),
            Err(ProtocolError::Disconnected)
        );
    }

    /// Regression (stale server clock): the server's logical clock used to
    /// advance only on offload requests, so an idle-then-querying client
    /// saw a frozen `k`: tracker samples could never age out. Every
    /// received frame now ticks the clock, so a stream of load queries
    /// alone eventually expires the 5 s tracker window.
    #[test]
    fn tracker_window_expires_for_an_idle_then_querying_client() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 6.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        // Populate the tracker with slow executions: k climbs toward 6.
        for _ in 0..3 {
            client.infer(&server, 8.0).expect("ok");
        }
        assert!(client.refresh_k(&server).expect("ok") > 4.0);
        // The client goes idle and only queries. 100 ms per frame: 60
        // queries move the server clock 6 s past the last sample — beyond
        // the 5 s window — so k must decay back to 1.
        let mut last_k = f64::NAN;
        for _ in 0..60 {
            server
                .send_frame(Message::LoadQuery.encode().expect("encodes"))
                .expect("alive");
            match Message::decode(server.recv_frame().expect("alive")).expect("valid") {
                Message::LoadReply { k_micro } => last_k = Message::micro_to_k(k_micro),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(last_k, 1.0, "stale samples must age out while idle");
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn scripted_crash_disconnects_both_directions() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server_with_faults(
            graph,
            edge.clone(),
            1.0,
            ServerFaultSpec {
                crash_after_frames: Some(1),
                ..ServerFaultSpec::default()
            },
        );
        // Frame 1 is served; frame 2 crosses the threshold and kills the
        // thread without a reply.
        server
            .send_frame(
                Message::Probe {
                    payload: Bytes::new(),
                }
                .encode()
                .expect("encodes"),
            )
            .expect("alive");
        assert_eq!(
            Message::decode(server.recv_frame().expect("alive")).expect("valid"),
            Message::ProbeAck
        );
        server
            .send_frame(Message::LoadQuery.encode().expect("encodes"))
            .expect("queued");
        assert_eq!(
            server.recv_frame_timeout(Duration::from_secs(1)),
            Err(ProtocolError::Disconnected)
        );
    }

    #[test]
    fn scripted_stall_swallows_the_window_then_recovers() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server_with_faults(
            graph,
            edge.clone(),
            1.0,
            ServerFaultSpec {
                stall: Some(StallWindow {
                    after_frames: 0,
                    frames: 2,
                }),
                ..ServerFaultSpec::default()
            },
        );
        // Frames 0 and 1 go unanswered; frame 2 is served again.
        for _ in 0..2 {
            server
                .send_frame(Message::LoadQuery.encode().expect("encodes"))
                .expect("alive");
            assert_eq!(
                server.recv_frame_timeout(Duration::from_millis(50)),
                Err(ProtocolError::Timeout)
            );
        }
        server
            .send_frame(Message::LoadQuery.encode().expect("encodes"))
            .expect("alive");
        let reply = Message::decode(
            server
                .recv_frame_timeout(Duration::from_secs(1))
                .expect("served again"),
        )
        .expect("valid");
        assert!(matches!(reply, Message::LoadReply { .. }));
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn scripted_panic_is_reported_not_propagated() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server_with_faults(
            graph,
            edge.clone(),
            1.0,
            ServerFaultSpec {
                panic_after_frames: Some(1),
                ..ServerFaultSpec::default()
            },
        );
        // Frame 1 is served; frame 2 (the shutdown itself) crosses the
        // threshold and panics the thread. The teardown path must surface
        // that as an error, not a propagated panic.
        server
            .send_frame(
                Message::Probe {
                    payload: Bytes::new(),
                }
                .encode()
                .expect("encodes"),
            )
            .expect("alive");
        assert_eq!(
            Message::decode(server.recv_frame().expect("alive")).expect("valid"),
            Message::ProbeAck
        );
        assert_eq!(server.shutdown(), Err(ProtocolError::ServerPanicked));
    }

    #[test]
    fn connected_sessions_get_their_own_replies() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        let a = server.connect();
        let b = server.connect();
        assert_ne!(a.id(), b.id());
        // Interleave queries from both sessions plus the handle itself;
        // every reply must land on the channel that asked.
        for conn in [&a, &b] {
            conn.send(Message::LoadQuery.encode().expect("encodes"))
                .expect("alive");
        }
        server
            .send_frame(Message::LoadQuery.encode().expect("encodes"))
            .expect("alive");
        let deadline = Instant::now() + Duration::from_secs(1);
        for conn in [&a, &b] {
            let reply = Message::decode(conn.recv_deadline(deadline).expect("routed")).expect("ok");
            assert!(matches!(reply, Message::LoadReply { .. }));
        }
        let reply = Message::decode(
            server
                .recv_frame_timeout(Duration::from_secs(1))
                .expect("routed"),
        )
        .expect("ok");
        assert!(matches!(reply, Message::LoadReply { .. }));
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn admission_rejects_over_the_wire() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server_full(
            graph,
            edge.clone(),
            LoadEnv::new(1.0),
            ServerFaultSpec::default(),
            Some(AdmissionConfig {
                max_inflight: 0,
                max_queue_delay: SimDuration::from_secs(1000),
                max_batch: 1,
            }),
            &Telemetry::disabled(),
        );
        server
            .send_frame(
                Message::OffloadRequest {
                    request_id: 7,
                    partition_point: 5,
                    precision: Precision::Fp32,
                    payload: Bytes::from(vec![0u8; 64]),
                }
                .encode()
                .expect("encodes"),
            )
            .expect("alive");
        let reply = Message::decode(
            server
                .recv_frame_timeout(Duration::from_secs(1))
                .expect("answered"),
        )
        .expect("valid");
        match reply {
            Message::Rejected { request_id, .. } => assert_eq!(request_id, 7),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(
            server.shutdown().expect("clean shutdown"),
            0,
            "a shed request is not served"
        );
    }

    #[test]
    fn load_env_can_respike_mid_run() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let env = LoadEnv::new(1.0);
        let server = spawn_server_full(
            graph.clone(),
            edge.clone(),
            env.clone(),
            ServerFaultSpec::default(),
            None,
            &Telemetry::disabled(),
        );
        let mut client = ThreadedClient::new(graph, user, edge);
        client.infer(&server, 8.0).expect("ok");
        assert!(client.refresh_k(&server).expect("ok") < 1.5);
        // Spike the environment mid-session: measured k must follow.
        env.set_k(6.0);
        for _ in 0..4 {
            client.infer(&server, 8.0).expect("ok");
        }
        assert!(client.refresh_k(&server).expect("ok") > 4.0);
        server.shutdown().expect("clean shutdown");
    }

    /// Stress the shared partition cache from the real worker pool: every
    /// lookup must be classified (hits + misses == lookups), distinct
    /// partition points miss at most once, and each session's replies
    /// arrive in dispatch order (the sharding invariant).
    #[test]
    fn worker_pool_hammers_the_shared_partition_cache_consistently() {
        let graph = Arc::new(lp_models::alexnet(1));
        let cache = Arc::new(PartitionCache::new());
        let pool = WorkerPool::spawn(
            4,
            ExecContext {
                graph: Arc::clone(&graph),
                cache: Arc::clone(&cache),
                // Default tuning: continuous batching on (max_batch 16,
                // bucket 4) — the invariants below must hold under it.
                tuning: ServerTuning::default(),
                batched_suffixes: None,
                suffix_batches: None,
            },
        );
        let sessions = 16usize;
        let per_session = 25usize;
        let mut rxs = Vec::new();
        for s in 0..sessions {
            let (tx, rx) = channel::<Frame>();
            let route = ReplyRoute::new(tx, None);
            for j in 0..per_session {
                let job = Job::Suffix {
                    request_id: j as u64,
                    server_time_us: 0,
                    p: (s + j) % (graph.len() + 1),
                };
                assert!(pool.dispatch(s, &route, job));
            }
            rxs.push(rx);
        }
        for rx in &rxs {
            for j in 0..per_session {
                let frame = rx
                    .recv_timeout(Duration::from_secs(5))
                    .expect("every job is answered");
                match Message::decode_frame(frame).expect("valid reply") {
                    Message::OffloadResponse { request_id, .. } => {
                        assert_eq!(request_id, j as u64, "per-session FIFO");
                    }
                    other => panic!("expected offload response, got {other:?}"),
                }
            }
        }
        pool.join();
        let stats = cache.stats();
        let lookups = (sessions * per_session) as u64;
        assert_eq!(stats.hits + stats.misses, lookups, "every lookup counted");
        assert!(
            stats.misses <= (graph.len() + 1) as u64,
            "at most one miss per distinct point: {stats:?}"
        );
        assert_eq!(cache.len() as u64, stats.misses);
    }

    /// Continuous batching coalesces queued same-bucket suffixes into one
    /// charged execution (visible through the batching counters) without
    /// reordering any session's replies — even with control forwards
    /// interleaved into the same worker queue.
    #[test]
    fn worker_batching_coalesces_without_reordering() {
        let graph = Arc::new(lp_models::alexnet(1));
        let batched = Counter::default();
        let batches = Counter::default();
        let pool = WorkerPool::spawn(
            1,
            ExecContext {
                graph: Arc::clone(&graph),
                cache: Arc::new(PartitionCache::new()),
                tuning: ServerTuning {
                    workers: 1,
                    legacy_framing: false,
                    // Each execution holds the worker long enough for the
                    // remaining dispatches below to queue up behind it, so
                    // at most the first batch is a singleton.
                    suffix_cost: Duration::from_millis(5),
                    max_batch: 8,
                    batch_bucket: 4,
                },
                batched_suffixes: Some(batched.clone()),
                suffix_batches: Some(batches.clone()),
            },
        );
        let sessions = 4usize;
        let rounds = 6usize;
        let mut rxs = Vec::new();
        let mut routes = Vec::new();
        for _ in 0..sessions {
            let (tx, rx) = channel::<Frame>();
            routes.push(ReplyRoute::new(tx, None));
            rxs.push(rx);
        }
        // Per round: one same-bucket suffix for every session, then a
        // control forward for session 0 — which at that point has a suffix
        // queued or batched ahead of it, the exact reordering hazard.
        for round in 0..rounds {
            for (s, route) in routes.iter().enumerate() {
                let job = Job::Suffix {
                    request_id: round as u64,
                    server_time_us: 0,
                    p: 8,
                };
                assert!(pool.dispatch(s, route, job));
            }
            let ack = pool.ctx.frame(&Message::ProbeAck);
            assert!(pool.dispatch(0, &routes[0], Job::Forward(ack)));
        }
        // Session 0 must see each round's offload response strictly before
        // the probe ack dispatched after it.
        for round in 0..rounds {
            for expect_ack in [false, true] {
                let frame = rxs[0]
                    .recv_timeout(Duration::from_secs(5))
                    .expect("session 0 reply");
                match (expect_ack, Message::decode_frame(frame).expect("valid")) {
                    (false, Message::OffloadResponse { request_id, .. }) => {
                        assert_eq!(request_id, round as u64, "suffix FIFO");
                    }
                    (true, Message::ProbeAck) => {}
                    (_, other) => panic!("round {round}: unexpected reply {other:?}"),
                }
            }
        }
        for rx in rxs.iter().skip(1) {
            for round in 0..rounds {
                let frame = rx.recv_timeout(Duration::from_secs(5)).expect("reply");
                match Message::decode_frame(frame).expect("valid") {
                    Message::OffloadResponse { request_id, .. } => {
                        assert_eq!(request_id, round as u64, "per-session FIFO");
                    }
                    other => panic!("expected offload response, got {other:?}"),
                }
            }
        }
        pool.join();
        assert!(batches.get() >= 1, "at least one coalesced batch executed");
        assert!(
            batched.get() >= 2,
            "batched suffixes counted: {}",
            batched.get()
        );
    }

    /// The tuning knobs change scheduling and framing, not behaviour: a
    /// session against the worker pool produces the same records as one
    /// against the inline (workers = 0) server.
    #[test]
    fn tuned_server_with_suffix_cost_still_serves_identically() {
        let (user, edge) = models();
        let graph = Arc::new(lp_models::alexnet(1));
        let mut runs = Vec::new();
        for tuning in [
            ServerTuning::single_threaded_legacy(),
            ServerTuning {
                suffix_cost: Duration::from_micros(100),
                ..ServerTuning::default()
            },
        ] {
            let server = spawn_server_tuned(
                Arc::clone(&graph),
                edge.clone(),
                LoadEnv::new(1.0),
                ServerFaultSpec::default(),
                None,
                &Telemetry::disabled(),
                tuning,
            );
            let mut client = ThreadedClient::new(Arc::clone(&graph), user, edge);
            let records: Vec<InferenceRecord> = (0..4)
                .map(|_| client.infer(&server, 8.0).expect("ok"))
                .collect();
            assert_eq!(server.shutdown().expect("clean shutdown"), 4);
            runs.push(records);
        }
        assert_eq!(runs[0], runs[1], "tuning must not change records");
    }
}

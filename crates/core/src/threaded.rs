//! A threaded client/server runtime speaking the wire [`protocol`](crate::protocol).
//!
//! The paper's implementation runs the offloading main thread and the
//! runtime-profiler thread concurrently on the device, and the offloading
//! service plus a GPU-utilization monitor on the server (§IV). This module
//! reproduces that process structure with real OS threads and channels:
//!
//! * the **server thread** owns the suffix partition cache, executes
//!   offloaded suffixes (simulated durations from the latency models), and
//!   answers load queries from its [`LoadFactorTracker`];
//! * the **client** runs Algorithm 1 per request, executes the prefix,
//!   frames an [`Message::OffloadRequest`] and awaits the response;
//! * probe frames keep the bandwidth estimator warm between requests.
//!
//! Time is logical (the simulated durations ride inside the frames), so
//! tests are deterministic, but the concurrency — shared caches behind
//! `parking_lot`, `crossbeam` channels, graceful shutdown — is real.

use crate::algorithm::PartitionSolver;
use crate::cache::PartitionCache;
use crate::protocol::{Message, ProtocolError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use lp_graph::ComputationGraph;
use lp_profiler::{LoadFactorTracker, PredictionModels};
use lp_sim::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// What the threaded client observed for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedRecord {
    /// Request id.
    pub request_id: u64,
    /// Partition point the client chose.
    pub p: usize,
    /// `k` the client used (from the last load reply).
    pub k_used: f64,
    /// Server-reported execution time.
    pub server_time: SimDuration,
    /// Bytes shipped in the request payload.
    pub uploaded_bytes: usize,
}

/// Handle to a running offloading server thread.
#[derive(Debug)]
pub struct ServerHandle {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    join: Option<JoinHandle<u64>>,
}

/// Spawns the edge-server thread for one DNN.
///
/// `k_factor` is the load factor the server's environment currently
/// exhibits (in the full co-simulation it emerges from GPU queueing; here
/// it is injected so threaded tests are deterministic) — the server's
/// tracker still *measures* it from the observed/predicted ratio, which is
/// the §III-C mechanism.
#[must_use]
pub fn spawn_server(
    graph: ComputationGraph,
    edge_models: PredictionModels,
    k_factor: f64,
) -> ServerHandle {
    let (client_tx, server_rx) = unbounded::<Bytes>();
    let (server_tx, client_rx) = unbounded::<Bytes>();
    let cache = Arc::new(PartitionCache::new());
    let tracker = Arc::new(Mutex::new(LoadFactorTracker::new(SimDuration::from_secs(
        5,
    ))));
    let join = std::thread::spawn(move || {
        let mut served = 0u64;
        let mut now = SimTime::ZERO;
        while let Ok(frame) = server_rx.recv() {
            let msg = match Message::decode(frame) {
                Ok(m) => m,
                Err(ProtocolError::Truncated | ProtocolError::BadVersion(_))
                | Err(ProtocolError::UnknownTag(_)) => continue, // drop bad frames
            };
            match msg {
                Message::OffloadRequest {
                    request_id,
                    partition_point,
                    payload: _payload,
                } => {
                    let p = partition_point as usize;
                    // Build or fetch the suffix graph (Figure 5).
                    let _partition = cache
                        .get_or_partition(&graph, p.min(graph.len()))
                        .expect("p in range");
                    // Execute the suffix: predicted time scaled by the
                    // environment's load factor.
                    let predicted = predicted_suffix(&edge_models, &graph, p);
                    let observed = predicted.scale(k_factor);
                    now += observed + SimDuration::from_millis(100);
                    tracker.lock().record(now, observed, predicted);
                    served += 1;
                    let resp = Message::OffloadResponse {
                        request_id,
                        server_time_us: observed.as_micros_f64().round() as u64,
                        payload: Bytes::from(vec![0u8; graph.output().size_bytes() as usize]),
                    };
                    if server_tx.send(resp.encode()).is_err() {
                        break;
                    }
                }
                Message::LoadQuery => {
                    let k = tracker.lock().k_at(now);
                    let reply = Message::LoadReply {
                        k_micro: Message::k_to_micro(k),
                    };
                    if server_tx.send(reply.encode()).is_err() {
                        break;
                    }
                }
                Message::Probe { .. } => {
                    if server_tx.send(Message::ProbeAck.encode()).is_err() {
                        break;
                    }
                }
                Message::Shutdown => break,
                // Server never receives responses/replies/acks.
                Message::OffloadResponse { .. } | Message::LoadReply { .. } | Message::ProbeAck => {
                }
            }
        }
        served
    });
    ServerHandle {
        tx: client_tx,
        rx: client_rx,
        join: Some(join),
    }
}

fn predicted_suffix(
    models: &PredictionModels,
    graph: &ComputationGraph,
    p: usize,
) -> SimDuration {
    if p >= graph.len() {
        SimDuration::ZERO
    } else {
        models.predict_range(graph, p + 1, graph.len())
    }
}

impl ServerHandle {
    /// Sends a raw frame to the server (used by the client and by
    /// fault-injection tests).
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited.
    pub fn send_frame(&self, frame: Bytes) -> Result<(), crossbeam::channel::SendError<Bytes>> {
        self.tx.send(frame)
    }

    /// Receives the next frame from the server.
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited and drained.
    pub fn recv_frame(&self) -> Result<Bytes, crossbeam::channel::RecvError> {
        self.rx.recv()
    }

    /// Shuts the server down and returns how many offload requests it
    /// served.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Message::Shutdown.encode());
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("server thread healthy")
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.tx.send(Message::Shutdown.encode());
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// A threaded offloading client for one DNN.
#[derive(Debug)]
pub struct ThreadedClient {
    graph: ComputationGraph,
    solver: PartitionSolver,
    cache: PartitionCache,
    k: f64,
    next_id: u64,
}

impl ThreadedClient {
    /// Builds the client with both trained model bundles.
    #[must_use]
    pub fn new(
        graph: ComputationGraph,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
    ) -> Self {
        let solver = PartitionSolver::new(&graph, user_models, edge_models);
        Self {
            graph,
            solver,
            cache: PartitionCache::new(),
            k: 1.0,
            next_id: 0,
        }
    }

    /// Queries the server for the current load factor and caches it — the
    /// periodic runtime-profiler action.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] on a malformed reply.
    ///
    /// # Panics
    ///
    /// Panics if the server thread is gone.
    pub fn refresh_k(&mut self, server: &ServerHandle) -> Result<f64, ProtocolError> {
        server
            .send_frame(Message::LoadQuery.encode())
            .expect("server alive");
        let reply = Message::decode(server.recv_frame().expect("server alive"))?;
        match reply {
            Message::LoadReply { k_micro } => {
                self.k = Message::micro_to_k(k_micro);
                Ok(self.k)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Runs one inference request end to end over the protocol.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] on malformed frames.
    ///
    /// # Panics
    ///
    /// Panics if the server thread is gone.
    pub fn infer(
        &mut self,
        server: &ServerHandle,
        bandwidth_mbps: f64,
    ) -> Result<ThreadedRecord, ProtocolError> {
        let decision = self.solver.decide(bandwidth_mbps, self.k);
        let p = decision.p;
        let partition = self.cache.get_or_partition(&self.graph, p).expect("p valid");
        let upload = partition.upload_bytes(&self.graph) as usize;
        let request_id = self.next_id;
        self.next_id += 1;
        if p == self.graph.len() {
            // Local inference: nothing crosses the wire.
            return Ok(ThreadedRecord {
                request_id,
                p,
                k_used: self.k,
                server_time: SimDuration::ZERO,
                uploaded_bytes: 0,
            });
        }
        let req = Message::OffloadRequest {
            request_id,
            partition_point: p as u32,
            payload: Bytes::from(vec![0u8; upload]),
        };
        server.send_frame(req.encode()).expect("server alive");
        let resp = Message::decode(server.recv_frame().expect("server alive"))?;
        match resp {
            Message::OffloadResponse {
                request_id: rid,
                server_time_us,
                payload,
            } => {
                debug_assert_eq!(rid, request_id);
                debug_assert_eq!(payload.len() as u64, self.graph.output().size_bytes());
                Ok(ThreadedRecord {
                    request_id,
                    p,
                    k_used: self.k,
                    server_time: SimDuration::from_micros_f64(server_time_us as f64),
                    uploaded_bytes: upload,
                })
            }
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(_msg: &Message) -> ProtocolError {
    // Any out-of-order message kind is treated as an unknown tag at the
    // session layer.
    ProtocolError::UnknownTag(255)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| crate::system::trained_models(150, 42))
    }

    #[test]
    fn offload_round_trip_over_threads() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("protocol ok");
        assert!(r.p < 27, "should offload at 8 Mbps");
        assert!(r.uploaded_bytes > 0);
        assert!(r.server_time > SimDuration::ZERO);
        assert_eq!(server.shutdown(), 1);
    }

    #[test]
    fn load_query_reflects_server_contention() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        // Server whose environment stretches executions 6x.
        let server = spawn_server(graph.clone(), edge.clone(), 6.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        // Before any offload the tracker is empty: k = 1.
        assert_eq!(client.refresh_k(&server).expect("ok"), 1.0);
        let p_before = client.infer(&server, 8.0).expect("ok").p;
        // A few offloads populate the tracker; k should approach 6.
        for _ in 0..4 {
            client.infer(&server, 8.0).expect("ok");
        }
        let k = client.refresh_k(&server).expect("ok");
        assert!((5.0..7.0).contains(&k), "k={k}");
        // And the next decision moves device-ward (or stays).
        let p_after = client.infer(&server, 8.0).expect("ok").p;
        assert!(p_after >= p_before, "{p_before} -> {p_after}");
        server.shutdown();
    }

    #[test]
    fn local_decisions_skip_the_wire() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 0.05).expect("ok");
        assert_eq!(r.p, 27);
        assert_eq!(r.uploaded_bytes, 0);
        assert_eq!(server.shutdown(), 0, "no offload requests should arrive");
    }

    #[test]
    fn server_drops_garbage_frames() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        // Garbage, truncated and wrong-version frames must not kill it.
        server.send_frame(Bytes::from_static(b"\xffgarbage")).expect("alive");
        server.send_frame(Bytes::new()).expect("alive");
        server
            .send_frame(Bytes::from_static(&[9, 1, 2, 3]))
            .expect("alive");
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("still serving");
        assert!(r.server_time > SimDuration::ZERO);
        assert_eq!(server.shutdown(), 1);
    }

    #[test]
    fn probes_are_acknowledged() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        server
            .send_frame(
                Message::Probe {
                    payload: Bytes::from(vec![0u8; 1024]),
                }
                .encode(),
            )
            .expect("alive");
        let ack = Message::decode(server.recv_frame().expect("alive")).expect("valid");
        assert_eq!(ack, Message::ProbeAck);
        server.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        drop(server); // must not hang or panic
    }
}

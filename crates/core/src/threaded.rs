//! A threaded client/server runtime speaking the wire [`protocol`](crate::protocol).
//!
//! The paper's implementation runs the offloading main thread and the
//! runtime-profiler thread concurrently on the device, and the offloading
//! service plus a GPU-utilization monitor on the server (§IV). This module
//! reproduces that process structure with real OS threads and channels:
//!
//! * the **server thread** owns the suffix partition cache, executes
//!   offloaded suffixes (simulated durations from the latency models), and
//!   answers load queries from its [`LoadFactorTracker`];
//! * the **client** is the [`OffloadEngine`] composed with the wire
//!   backends ([`WireBackend`]/[`WireTransport`]): Algorithm 1 per request,
//!   [`Message::OffloadRequest`]-framed uploads, probe frames and load
//!   queries on the profiler cadence;
//! * time is logical — the client's clock advances one profiler period per
//!   request, and the server's clock advances a fixed tick per **received
//!   frame** (plus the observed execution time per offload), so load-query
//!   handling and tracker-window expiry see a moving clock even when the
//!   client only queries.
//!
//! Every client-side wire operation is **deadline-based** ([`FrameChannel`]
//! / [`ServerHandle::recv_frame_timeout`]): a stalled or dead server yields
//! [`ProtocolError::Timeout`] / [`ProtocolError::Disconnected`] instead of
//! a hang or a panic, and the engine degrades to local inference. The
//! [`ServerFaultSpec`] passed to [`spawn_server_with_faults`] scripts
//! server crashes and stalls deterministically for tests and demos; the
//! client-side counterpart is [`crate::fault::FaultInjector`].
//!
//! Tests are deterministic, but the concurrency — shared caches behind
//! locks, `std::sync::mpsc` channels, graceful shutdown — is real.

use crate::baselines::Policy;
use crate::cache::PartitionCache;
use crate::engine::backends::{NullDevice, WireBackend, WireTransport};
use crate::engine::{ConfigError, EngineConfig, InferenceRecord, OffloadEngine};
use crate::protocol::{Message, ProtocolError};
use crate::telemetry::{Counter, Gauge, Telemetry};
use bytes::Bytes;
use lp_graph::ComputationGraph;
use lp_profiler::{LoadFactorTracker, PredictionModels};
use lp_sim::{SimDuration, SimTime};
use std::sync::mpsc::{channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The logical time the server charges for receiving any frame (the
/// inter-request spacing the runtime has always modelled).
const RECV_TICK: SimDuration = SimDuration::from_millis(100);

/// A bidirectional frame pipe the client-side wire backends speak over.
///
/// [`ServerHandle`] implements it directly;
/// [`crate::fault::FaultInjector`] wraps any implementation to inject
/// scripted faults between the engine and the real channel.
pub trait FrameChannel {
    /// Sends one frame toward the server.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] if the peer is gone.
    fn send(&self, frame: Bytes) -> Result<(), ProtocolError>;

    /// Receives the next frame, waiting no later than `deadline`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] when the deadline passes with no frame,
    /// [`ProtocolError::Disconnected`] when the peer is gone.
    fn recv_deadline(&self, deadline: Instant) -> Result<Bytes, ProtocolError>;
}

/// Handle to a running offloading server thread.
#[derive(Debug)]
pub struct ServerHandle {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    join: Option<JoinHandle<u64>>,
}

/// A window of received-frame indices the server leaves unanswered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// First received-frame index (0-based) that goes unanswered.
    pub after_frames: u64,
    /// How many consecutive frames go unanswered.
    pub frames: u64,
}

impl StallWindow {
    fn covers(&self, idx: u64) -> bool {
        idx >= self.after_frames && idx < self.after_frames + self.frames
    }
}

/// Deterministic server-side fault script for [`spawn_server_with_faults`]:
/// crash and stall behaviour keyed by received-frame counts, so tests can
/// place a fault at an exact point in the session without wall-clock
/// randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerFaultSpec {
    /// Exit the server thread abruptly (simulated crash) once this many
    /// frames have been received; the frame crossing the threshold is not
    /// served, and both channels disconnect.
    pub crash_after_frames: Option<u64>,
    /// Drop the frames in this window silently — the server is alive but
    /// unresponsive, which is what a deadline must catch.
    pub stall: Option<StallWindow>,
}

/// Spawns the edge-server thread for one DNN.
///
/// `k_factor` is the load factor the server's environment currently
/// exhibits (in the full co-simulation it emerges from GPU queueing; here
/// it is injected so threaded tests are deterministic) — the server's
/// tracker still *measures* it from the observed/predicted ratio, which is
/// the §III-C mechanism.
#[must_use]
pub fn spawn_server(
    graph: ComputationGraph,
    edge_models: PredictionModels,
    k_factor: f64,
) -> ServerHandle {
    spawn_server_with_faults(graph, edge_models, k_factor, ServerFaultSpec::default())
}

/// [`spawn_server`] plus a deterministic fault script ([`ServerFaultSpec`]).
#[must_use]
pub fn spawn_server_with_faults(
    graph: ComputationGraph,
    edge_models: PredictionModels,
    k_factor: f64,
    faults: ServerFaultSpec,
) -> ServerHandle {
    spawn_server_instrumented(graph, edge_models, k_factor, faults, &Telemetry::disabled())
}

/// Pre-registered instrument handles for the server frame loop; `None`
/// when the spawning telemetry is disabled, so the loop pays one branch
/// per event.
struct ServerMetrics {
    frames: Counter,
    offloads: Counter,
    load_queries: Counter,
    probe_acks: Counter,
    bad_frames: Counter,
    stalled: Counter,
    k: Gauge,
}

impl ServerMetrics {
    fn register(telemetry: &Telemetry) -> Option<Self> {
        telemetry.registry().map(|reg| Self {
            frames: reg.counter("server.frames_total"),
            offloads: reg.counter("server.offloads_served_total"),
            load_queries: reg.counter("server.load_queries_total"),
            probe_acks: reg.counter("server.probe_acks_total"),
            bad_frames: reg.counter("server.bad_frames_total"),
            stalled: reg.counter("server.stalled_frames_total"),
            k: reg.gauge("server.k"),
        })
    }
}

/// [`spawn_server_with_faults`] plus an observability handle: the server
/// thread counts its frame traffic under `server.*` in `telemetry`'s
/// registry (shared with whatever client-side engine observes the same
/// run).
#[must_use]
pub fn spawn_server_instrumented(
    graph: ComputationGraph,
    edge_models: PredictionModels,
    k_factor: f64,
    faults: ServerFaultSpec,
    telemetry: &Telemetry,
) -> ServerHandle {
    let metrics = ServerMetrics::register(telemetry);
    let (client_tx, server_rx) = channel::<Bytes>();
    let (server_tx, client_rx) = channel::<Bytes>();
    let cache = Arc::new(PartitionCache::new());
    let tracker = Arc::new(Mutex::new(LoadFactorTracker::new(SimDuration::from_secs(
        5,
    ))));
    let join = std::thread::spawn(move || {
        let mut served = 0u64;
        let mut now = SimTime::ZERO;
        let mut received = 0u64;
        while let Ok(frame) = server_rx.recv() {
            let idx = received;
            received += 1;
            if faults.crash_after_frames.is_some_and(|n| received > n) {
                // Simulated crash: exit without replying; dropping the
                // channel ends the session abruptly on the client side.
                return served;
            }
            if let Some(m) = &metrics {
                m.frames.incr(1);
            }
            // Receiving any frame advances the server's logical clock, so
            // load queries evaluate `k` at a moving instant and the
            // tracker window can expire for an idle-then-querying client.
            now += RECV_TICK;
            if faults.stall.is_some_and(|s| s.covers(idx)) {
                if let Some(m) = &metrics {
                    m.stalled.incr(1);
                }
                continue; // unresponsive: swallow the frame
            }
            let msg = match Message::decode(frame) {
                Ok(m) => m,
                Err(_) => {
                    if let Some(m) = &metrics {
                        m.bad_frames.incr(1);
                    }
                    continue; // drop bad frames
                }
            };
            match msg {
                Message::OffloadRequest {
                    request_id,
                    partition_point,
                    payload: _payload,
                } => {
                    let p = partition_point as usize;
                    // Build or fetch the suffix graph (Figure 5).
                    let _ = cache
                        .get_or_partition(&graph, p.min(graph.len()))
                        .expect("p in range");
                    // Execute the suffix: predicted time scaled by the
                    // environment's load factor.
                    let predicted = predicted_suffix(&edge_models, &graph, p);
                    let observed = predicted.scale(k_factor);
                    now += observed;
                    tracker
                        .lock()
                        .expect("lock poisoned")
                        .record(now, observed, predicted);
                    served += 1;
                    if let Some(m) = &metrics {
                        m.offloads.incr(1);
                    }
                    let resp = Message::OffloadResponse {
                        request_id,
                        server_time_us: observed.as_micros_f64().round() as u64,
                        payload: Bytes::from(vec![0u8; graph.output().size_bytes() as usize]),
                    };
                    if server_tx.send(resp.encode()).is_err() {
                        break;
                    }
                }
                Message::LoadQuery => {
                    let k = tracker.lock().expect("lock poisoned").k_at(now);
                    if let Some(m) = &metrics {
                        m.load_queries.incr(1);
                        m.k.set(k);
                    }
                    let reply = Message::LoadReply {
                        k_micro: Message::k_to_micro(k),
                    };
                    if server_tx.send(reply.encode()).is_err() {
                        break;
                    }
                }
                Message::Probe { .. } => {
                    if let Some(m) = &metrics {
                        m.probe_acks.incr(1);
                    }
                    if server_tx.send(Message::ProbeAck.encode()).is_err() {
                        break;
                    }
                }
                Message::Shutdown => break,
                // Server never receives responses/replies/acks.
                Message::OffloadResponse { .. } | Message::LoadReply { .. } | Message::ProbeAck => {
                }
            }
        }
        served
    });
    ServerHandle {
        tx: client_tx,
        rx: client_rx,
        join: Some(join),
    }
}

fn predicted_suffix(models: &PredictionModels, graph: &ComputationGraph, p: usize) -> SimDuration {
    if p >= graph.len() {
        SimDuration::ZERO
    } else {
        models.predict_range(graph, p + 1, graph.len())
    }
}

impl ServerHandle {
    /// Sends a raw frame to the server (used by the client and by
    /// fault-injection tests).
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited.
    pub fn send_frame(&self, frame: Bytes) -> Result<(), SendError<Bytes>> {
        self.tx.send(frame)
    }

    /// Receives the next frame from the server, blocking indefinitely.
    /// Client-side request paths must use [`Self::recv_frame_timeout`] (or
    /// the [`FrameChannel`] deadline API) instead, so a stalled server
    /// cannot hang them.
    ///
    /// # Errors
    ///
    /// Fails if the server thread has exited and drained.
    pub fn recv_frame(&self) -> Result<Bytes, RecvError> {
        self.rx.recv()
    }

    /// Receives the next frame from the server, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] when nothing arrives in time,
    /// [`ProtocolError::Disconnected`] when the server thread has exited
    /// and the channel drained.
    pub fn recv_frame_timeout(&self, timeout: std::time::Duration) -> Result<Bytes, ProtocolError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(ProtocolError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ProtocolError::Disconnected),
        }
    }

    /// Shuts the server down and returns how many offload requests it
    /// served.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Message::Shutdown.encode());
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("server thread healthy")
    }
}

impl FrameChannel for ServerHandle {
    fn send(&self, frame: Bytes) -> Result<(), ProtocolError> {
        self.send_frame(frame)
            .map_err(|_| ProtocolError::Disconnected)
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<Bytes, ProtocolError> {
        self.recv_frame_timeout(deadline.saturating_duration_since(Instant::now()))
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.tx.send(Message::Shutdown.encode());
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// A threaded offloading client for one DNN: the [`OffloadEngine`] over
/// the wire backends.
#[derive(Debug)]
pub struct ThreadedClient {
    engine: OffloadEngine,
    now: SimTime,
}

impl ThreadedClient {
    /// Builds the client with both trained model bundles and the default
    /// engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the default engine configuration is invalid (it is not).
    #[must_use]
    pub fn new(
        graph: ComputationGraph,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
    ) -> Self {
        Self::with_config(graph, user_models, edge_models, EngineConfig::default())
            .expect("default config valid")
    }

    /// Builds the client with an explicit engine configuration (fault
    /// tests shrink `io_timeout`/`retry_backoff` to keep deadlines fast).
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations with [`ConfigError`].
    pub fn with_config(
        graph: ComputationGraph,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        let engine =
            OffloadEngine::new(graph, Policy::LoadPart, user_models, edge_models, 0, config)?;
        Ok(Self {
            engine,
            now: SimTime::ZERO,
        })
    }

    /// The underlying engine (solver, profile, caches).
    #[must_use]
    pub fn engine(&self) -> &OffloadEngine {
        &self.engine
    }

    /// Installs an observability handle on the underlying engine. Pass the
    /// same handle to [`spawn_server_instrumented`] to see client and
    /// server sides of one session in a single registry.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.engine.set_telemetry(telemetry);
    }

    /// The client's logical clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queries the server for the current load factor and caches it — the
    /// explicit runtime-profiler action.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] on a malformed reply, a timeout or a
    /// dead server.
    pub fn refresh_k<C: FrameChannel + ?Sized>(
        &mut self,
        server: &C,
    ) -> Result<f64, ProtocolError> {
        let mut backend = WireBackend {
            server,
            deadline: self.engine.config().io_timeout,
        };
        self.engine.refresh_k(self.now, &mut backend)
    }

    /// Runs one inference request end to end over the protocol.
    ///
    /// The client's logical clock advances one profiler period per
    /// request, so the periodic refresh (probe frame + load query) fires
    /// every time. Wire faults never panic or hang the client: exchanges
    /// are retried with backoff and, if the fault persists, the request
    /// completes locally (`fallback_local` set on the record) and the
    /// engine cools down before touching the wire again.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] only for failures the engine cannot
    /// absorb (none on the current degradation paths).
    pub fn infer<C: FrameChannel + ?Sized>(
        &mut self,
        server: &C,
        bandwidth_mbps: f64,
    ) -> Result<InferenceRecord, ProtocolError> {
        self.now += self.engine.config().profiler_period;
        self.engine.profile_mut().inject_bandwidth(bandwidth_mbps);
        let deadline = self.engine.config().io_timeout;
        let mut device = NullDevice;
        let mut backend = WireBackend { server, deadline };
        let mut transport = WireTransport { server, deadline };
        self.engine
            .run(self.now, &mut device, &mut backend, &mut transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use std::time::Duration;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| crate::system::trained_models(150, 42))
    }

    #[test]
    fn offload_round_trip_over_threads() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("protocol ok");
        assert!(r.p < 27, "should offload at 8 Mbps");
        assert!(r.uploaded_bytes > 0);
        assert!(r.server > SimDuration::ZERO);
        assert!(!r.fallback_local);
        assert_eq!(r.retries, 0);
        assert_eq!(server.shutdown(), 1);
    }

    #[test]
    fn load_query_reflects_server_contention() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        // Server whose environment stretches executions 6x.
        let server = spawn_server(graph.clone(), edge.clone(), 6.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        // Before any offload the tracker is empty: k = 1.
        assert_eq!(client.refresh_k(&server).expect("ok"), 1.0);
        let p_before = client.infer(&server, 8.0).expect("ok").p;
        // A few offloads populate the tracker; k should approach 6.
        for _ in 0..4 {
            client.infer(&server, 8.0).expect("ok");
        }
        let k = client.refresh_k(&server).expect("ok");
        assert!((5.0..7.0).contains(&k), "k={k}");
        // And the next decision moves device-ward (or stays).
        let p_after = client.infer(&server, 8.0).expect("ok").p;
        assert!(p_after >= p_before, "{p_before} -> {p_after}");
        server.shutdown();
    }

    #[test]
    fn local_decisions_skip_the_wire() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 0.05).expect("ok");
        assert_eq!(r.p, 27);
        assert_eq!(r.uploaded_bytes, 0);
        assert_eq!(server.shutdown(), 0, "no offload requests should arrive");
    }

    #[test]
    fn server_drops_garbage_frames() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        // Garbage, truncated and wrong-version frames must not kill it.
        server
            .send_frame(Bytes::from_static(b"\xffgarbage"))
            .expect("alive");
        server.send_frame(Bytes::new()).expect("alive");
        server
            .send_frame(Bytes::from_static(&[9, 1, 2, 3]))
            .expect("alive");
        let mut client = ThreadedClient::new(graph, user, edge);
        let r = client.infer(&server, 8.0).expect("still serving");
        assert!(r.server > SimDuration::ZERO);
        assert_eq!(server.shutdown(), 1);
    }

    #[test]
    fn probes_are_acknowledged() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        server
            .send_frame(
                Message::Probe {
                    payload: Bytes::from(vec![0u8; 1024]),
                }
                .encode(),
            )
            .expect("alive");
        let ack = Message::decode(server.recv_frame().expect("alive")).expect("valid");
        assert_eq!(ack, Message::ProbeAck);
        server.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        drop(server); // must not hang or panic
    }

    #[test]
    fn request_ids_are_sequential() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 1.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        for expect in 0..3u64 {
            let r = client.infer(&server, 8.0).expect("ok");
            assert_eq!(r.request_id, expect);
        }
        server.shutdown();
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph, edge.clone(), 1.0);
        // Nothing was sent: a bounded wait must end in Timeout, not a hang.
        assert_eq!(
            server.recv_frame_timeout(Duration::from_millis(10)),
            Err(ProtocolError::Timeout)
        );
        // Kill the server thread; the channel now reports Disconnected.
        server
            .send_frame(Message::Shutdown.encode())
            .expect("alive");
        // Wait for the thread to exit by joining via a fresh handle scope.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            server.recv_frame_timeout(Duration::from_millis(10)),
            Err(ProtocolError::Disconnected)
        );
    }

    /// Regression (stale server clock): the server's logical clock used to
    /// advance only on offload requests, so an idle-then-querying client
    /// saw a frozen `k`: tracker samples could never age out. Every
    /// received frame now ticks the clock, so a stream of load queries
    /// alone eventually expires the 5 s tracker window.
    #[test]
    fn tracker_window_expires_for_an_idle_then_querying_client() {
        let (user, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server(graph.clone(), edge.clone(), 6.0);
        let mut client = ThreadedClient::new(graph, user, edge);
        // Populate the tracker with slow executions: k climbs toward 6.
        for _ in 0..3 {
            client.infer(&server, 8.0).expect("ok");
        }
        assert!(client.refresh_k(&server).expect("ok") > 4.0);
        // The client goes idle and only queries. 100 ms per frame: 60
        // queries move the server clock 6 s past the last sample — beyond
        // the 5 s window — so k must decay back to 1.
        let mut last_k = f64::NAN;
        for _ in 0..60 {
            server
                .send_frame(Message::LoadQuery.encode())
                .expect("alive");
            match Message::decode(server.recv_frame().expect("alive")).expect("valid") {
                Message::LoadReply { k_micro } => last_k = Message::micro_to_k(k_micro),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(last_k, 1.0, "stale samples must age out while idle");
        server.shutdown();
    }

    #[test]
    fn scripted_crash_disconnects_both_directions() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server_with_faults(
            graph,
            edge.clone(),
            1.0,
            ServerFaultSpec {
                crash_after_frames: Some(1),
                stall: None,
            },
        );
        // Frame 1 is served; frame 2 crosses the threshold and kills the
        // thread without a reply.
        server
            .send_frame(
                Message::Probe {
                    payload: Bytes::new(),
                }
                .encode(),
            )
            .expect("alive");
        assert_eq!(
            Message::decode(server.recv_frame().expect("alive")).expect("valid"),
            Message::ProbeAck
        );
        server
            .send_frame(Message::LoadQuery.encode())
            .expect("queued");
        assert_eq!(
            server.recv_frame_timeout(Duration::from_secs(1)),
            Err(ProtocolError::Disconnected)
        );
    }

    #[test]
    fn scripted_stall_swallows_the_window_then_recovers() {
        let (_, edge) = models();
        let graph = lp_models::alexnet(1);
        let server = spawn_server_with_faults(
            graph,
            edge.clone(),
            1.0,
            ServerFaultSpec {
                crash_after_frames: None,
                stall: Some(StallWindow {
                    after_frames: 0,
                    frames: 2,
                }),
            },
        );
        // Frames 0 and 1 go unanswered; frame 2 is served again.
        for _ in 0..2 {
            server
                .send_frame(Message::LoadQuery.encode())
                .expect("alive");
            assert_eq!(
                server.recv_frame_timeout(Duration::from_millis(50)),
                Err(ProtocolError::Timeout)
            );
        }
        server
            .send_frame(Message::LoadQuery.encode())
            .expect("alive");
        let reply = Message::decode(
            server
                .recv_frame_timeout(Duration::from_secs(1))
                .expect("served again"),
        )
        .expect("valid");
        assert!(matches!(reply, Message::LoadReply { .. }));
        server.shutdown();
    }
}

//! The tracing half of the observability layer: per-request spans and
//! pluggable sinks.
//!
//! Every driver emits the same span sequence per request, stamped with
//! **sim time** so traces are deterministic for a given seed:
//!
//! * offloaded: `Decide → DevicePrefix [→ Quantize] → Upload →
//!   ServerSuffix → Finish` (`Quantize` only when a narrow upload
//!   precision was negotiated, so fp32 sequences are unchanged)
//! * local (p == n): `Decide → DevicePrefix → Finish`
//! * fallback after a failed upload/suffix: `Decide → DevicePrefix
//!   [→ Upload] → Finish` with [`SpanEvent::fallback_local`] set.
//!
//! [`SpanEvent`] is an all-scalar `Copy` struct: building one allocates
//! nothing, so the disabled path (no sink installed) costs a branch and
//! the enabled path costs whatever the sink does. [`RingSink`] keeps the
//! last N events in memory for tests and snapshots; [`JsonlSink`] writes
//! one JSON object per line for offline analysis (the bench bins' trace
//! export flags use it).

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

use lp_json::Json;
use lp_sim::{SimDuration, SimTime};

/// The phase of the offload pipeline a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The partition decision (Algorithm 1 or the degraded path).
    Decide,
    /// Executing layers `0..p` on the device.
    DevicePrefix,
    /// Quantizing the cut tensor before upload (emitted only when a
    /// narrow precision was negotiated; `bytes` carries the bytes saved
    /// versus fp32, so the fp32 span sequence is untouched).
    Quantize,
    /// Shipping the cut tensor to the server.
    Upload,
    /// Executing layers `p..n` on the server.
    ServerSuffix,
    /// The server's admission control shed the request; `duration` is the
    /// piggybacked retry-after hint.
    Rejected,
    /// The client's circuit breaker changed state while serving this
    /// request; `bytes` carries the transition count.
    Breaker,
    /// The request settled; `duration` is the end-to-end total.
    Finish,
}

impl SpanKind {
    /// Stable lowercase name used in JSONL output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Decide => "decide",
            SpanKind::DevicePrefix => "device_prefix",
            SpanKind::Quantize => "quantize",
            SpanKind::Upload => "upload",
            SpanKind::ServerSuffix => "server_suffix",
            SpanKind::Rejected => "rejected",
            SpanKind::Breaker => "breaker",
            SpanKind::Finish => "finish",
        }
    }
}

/// One span of one request. All fields are scalars; the struct is `Copy`
/// and building it performs no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Client index (0 for single-client drivers).
    pub client: usize,
    /// Engine-assigned request id.
    pub request_id: u64,
    /// Which pipeline phase this span covers.
    pub kind: SpanKind,
    /// Sim-time start of the phase.
    pub at: SimTime,
    /// Phase duration (`ZERO` for instantaneous events like `Decide`).
    pub duration: SimDuration,
    /// Chosen partition point.
    pub p: usize,
    /// Load factor used for the decision.
    pub k: f64,
    /// Bandwidth estimate used for the decision (Mbps).
    pub bandwidth_mbps: f64,
    /// Bytes moved during this phase (uploads; 0 elsewhere).
    pub bytes: u64,
    /// True when the request settled via local fallback.
    pub fallback_local: bool,
}

impl SpanEvent {
    /// Renders the event as a single-line JSON object (the JSONL schema).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("client".into(), Json::Num(self.client as f64)),
            ("request_id".into(), Json::Num(self.request_id as f64)),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("at_secs".into(), Json::Num(self.at.as_secs_f64())),
            (
                "duration_secs".into(),
                Json::Num(self.duration.as_secs_f64()),
            ),
            ("p".into(), Json::Num(self.p as f64)),
            ("k".into(), Json::Num(self.k)),
            ("bandwidth_mbps".into(), Json::Num(self.bandwidth_mbps)),
            ("bytes".into(), Json::Num(self.bytes as f64)),
            ("fallback_local".into(), Json::Bool(self.fallback_local)),
        ])
    }
}

/// Destination for span events. Implementations must be cheap enough to
/// sit on the request path and tolerant of concurrent emitters (the
/// threaded driver emits from both client and server threads).
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Accepts one span event.
    fn emit(&self, event: SpanEvent);
}

/// An in-memory, capacity-bounded sink: keeps the most recent events and
/// drops the oldest past `capacity`. The default sink for tests and the
/// snapshot API.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<SpanEvent>>,
}

impl RingSink {
    /// Creates a sink retaining at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        })
    }

    /// All retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect()
    }

    /// Retained events for one request, oldest first.
    #[must_use]
    pub fn events_for(&self, request_id: u64) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| e.request_id == request_id)
            .copied()
            .collect()
    }

    /// The span-kind sequence for one request — what the driver
    /// equivalence tests diff.
    #[must_use]
    pub fn kinds_for(&self, request_id: u64) -> Vec<SpanKind> {
        self.events_for(request_id).iter().map(|e| e.kind).collect()
    }
}

impl TraceSink for RingSink {
    fn emit(&self, event: SpanEvent) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }
}

/// A sink that writes one compact JSON object per line to any writer.
/// Lines are written under a mutex, so concurrent emitters never
/// interleave bytes. IO errors are counted, not propagated — tracing must
/// never fail the request path.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
    errors: Mutex<u64>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field(
                "errors",
                &*self.errors.lock().unwrap_or_else(|e| e.into_inner()),
            )
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps any writer (a `File`, a `Vec<u8>`, …).
    #[must_use]
    pub fn new(writer: Box<dyn Write + Send>) -> Arc<Self> {
        Arc::new(Self {
            writer: Mutex::new(writer),
            errors: Mutex::new(0),
        })
    }

    /// Creates (truncating) `path` and streams events to it.
    pub fn create(path: &str) -> std::io::Result<Arc<Self>> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Number of IO errors swallowed so far.
    #[must_use]
    pub fn errors(&self) -> u64 {
        *self.errors.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush()
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, event: SpanEvent) {
        let line = event.to_json().to_string_compact();
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writeln!(writer, "{line}").is_err() {
            *self.errors.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(request_id: u64, kind: SpanKind) -> SpanEvent {
        SpanEvent {
            client: 0,
            request_id,
            kind,
            at: SimTime::ZERO,
            duration: SimDuration::ZERO,
            p: 5,
            k: 1.0,
            bandwidth_mbps: 8.0,
            bytes: 0,
            fallback_local: false,
        }
    }

    #[test]
    fn ring_sink_drops_oldest_past_capacity() {
        let sink = RingSink::new(2);
        sink.emit(ev(1, SpanKind::Decide));
        sink.emit(ev(1, SpanKind::DevicePrefix));
        sink.emit(ev(1, SpanKind::Finish));
        let kinds = sink.kinds_for(1);
        assert_eq!(kinds, vec![SpanKind::DevicePrefix, SpanKind::Finish]);
    }

    #[test]
    fn ring_sink_filters_by_request() {
        let sink = RingSink::new(16);
        sink.emit(ev(1, SpanKind::Decide));
        sink.emit(ev(2, SpanKind::Decide));
        sink.emit(ev(1, SpanKind::Finish));
        assert_eq!(sink.events_for(1).len(), 2);
        assert_eq!(sink.events_for(2).len(), 1);
        assert_eq!(sink.events().len(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        #[derive(Debug)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.emit(ev(7, SpanKind::Upload));
        sink.emit(ev(7, SpanKind::Finish));
        sink.flush().unwrap();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let json = Json::parse(line).expect("valid json");
            match json {
                Json::Obj(fields) => {
                    assert!(fields.iter().any(|(k, _)| k == "kind"));
                    assert!(fields.iter().any(|(k, _)| k == "at_secs"));
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
        assert_eq!(sink.errors(), 0);
    }

    #[test]
    fn span_kind_names_are_stable() {
        assert_eq!(SpanKind::Decide.as_str(), "decide");
        assert_eq!(SpanKind::DevicePrefix.as_str(), "device_prefix");
        assert_eq!(SpanKind::Quantize.as_str(), "quantize");
        assert_eq!(SpanKind::Upload.as_str(), "upload");
        assert_eq!(SpanKind::ServerSuffix.as_str(), "server_suffix");
        assert_eq!(SpanKind::Rejected.as_str(), "rejected");
        assert_eq!(SpanKind::Breaker.as_str(), "breaker");
        assert_eq!(SpanKind::Finish.as_str(), "finish");
    }
}

//! Observability for every driver: metrics + per-request trace spans.
//!
//! The paper's whole mechanism is driven by runtime signals — the
//! sliding-window bandwidth estimate and the load factor `k` (§IV) — so a
//! production deployment needs those signals observable, not buried in
//! ad-hoc record fields. This module provides one [`Telemetry`] handle
//! shared by all three drivers (co-sim [`crate::OffloadingSystem`], the
//! threaded wire runtime, [`crate::multi_client_run`]):
//!
//! * [`MetricsRegistry`] — counters / gauges / fixed-bucket histograms
//!   behind lock-free `Arc` handles ([`metrics`]).
//! * [`TraceSink`] — per-request span events with sim-time timestamps,
//!   with a ring buffer for tests and a JSONL writer for files
//!   ([`trace`]).
//!
//! `Telemetry::disabled()` is the default everywhere and is a single
//! `None` — the per-request hot path pays one branch and performs **no
//! allocation** when telemetry is off.

pub mod metrics;
pub mod trace;

use std::sync::Arc;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    DECISION_BUCKETS_SECS, LATENCY_BUCKETS_SECS,
};
pub use trace::{JsonlSink, RingSink, SpanEvent, SpanKind, TraceSink};

#[derive(Debug)]
struct TelemetryInner {
    registry: MetricsRegistry,
    sink: Option<Arc<dyn TraceSink>>,
}

/// The shared observability handle: a metrics registry plus an optional
/// trace sink. Cloning is an `Arc` bump; the disabled state is a `None`
/// and every operation on it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op handle (the default in every driver).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with a fresh registry and no trace sink.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                registry: MetricsRegistry::new(),
                sink: None,
            })),
        }
    }

    /// Returns a copy of this handle with `sink` installed (enabling it
    /// first if needed). The registry is shared with `self` when already
    /// enabled.
    #[must_use]
    pub fn with_sink(&self, sink: Arc<dyn TraceSink>) -> Self {
        let registry = match &self.inner {
            Some(inner) => inner.registry.clone(),
            None => MetricsRegistry::new(),
        };
        Self {
            inner: Some(Arc::new(TelemetryInner {
                registry,
                sink: Some(sink),
            })),
        }
    }

    /// Whether any metrics or traces will be recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The registry, when enabled. Use this to pre-register instrument
    /// handles off the hot path.
    #[must_use]
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Emits a span event to the installed sink, if any.
    pub fn emit(&self, event: SpanEvent) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.emit(event);
            }
        }
    }

    /// Whether span events will reach a sink (lets callers skip building
    /// events entirely).
    #[must_use]
    pub fn traces(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.sink.is_some())
    }

    /// Cold-path convenience: bump the counter `name` by `by`. Hot paths
    /// should pre-register handles via [`Telemetry::registry`] instead.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name).incr(by);
        }
    }

    /// Cold-path convenience: set the gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name).set(v);
        }
    }

    /// A point-in-time copy of every instrument, or `None` when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.registry().map(MetricsRegistry::snapshot)
    }
}

/// Pre-registered instrument handles for the engine's per-request path.
/// Built once in [`crate::OffloadEngine::set_telemetry`]; every field op
/// afterwards is a relaxed atomic, no registry lock, no allocation.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// `engine.requests_total` — requests started.
    pub requests: Counter,
    /// `engine.offloaded_total` — requests whose suffix ran on the server.
    pub offloaded: Counter,
    /// `engine.local_total` — requests decided fully local (p == n).
    pub local: Counter,
    /// `engine.fallbacks_total` — requests settled by local fallback.
    pub fallbacks: Counter,
    /// `engine.rejected_total` — requests shed by server admission
    /// control (completed locally, but counted as shed, not fallback).
    pub rejected: Counter,
    /// `breaker.transitions_total` — circuit-breaker state transitions.
    pub breaker_transitions: Counter,
    /// `breaker.state` — current breaker state (0 closed, 1 half-open,
    /// 2 open).
    pub breaker_state: Gauge,
    /// `engine.retries_total` — transport/profiler retries performed.
    pub retries: Counter,
    /// `engine.cache_hits_total` — partition cache hits.
    pub cache_hits: Counter,
    /// `engine.cache_misses_total` — partition cache misses.
    pub cache_misses: Counter,
    /// `engine.decision_memo_hits_total` — requests whose Algorithm-1
    /// decision was answered from the engine's memo instead of a scan.
    pub decision_memo_hits: Counter,
    /// `engine.decision_seconds` — wall-clock decision latency (memo hits
    /// skip the scan and are not observed here).
    pub decision_seconds: Histogram,
    /// `engine.device_seconds` — simulated device prefix time.
    pub device_seconds: Histogram,
    /// `engine.upload_seconds` — simulated upload time.
    pub upload_seconds: Histogram,
    /// `engine.server_seconds` — simulated server suffix time.
    pub server_seconds: Histogram,
    /// `engine.k` — load factor used by the latest decision.
    pub k: Gauge,
    /// `engine.bandwidth_mbps` — bandwidth estimate used by the latest
    /// decision.
    pub bandwidth_mbps: Gauge,
    /// `engine.partition_point` — the latest chosen `p`.
    pub partition_point: Gauge,
    /// `engine.upload_bytes_raw_total` — fp32 bytes of crossing tensors
    /// before quantization, summed over offloaded requests.
    pub upload_bytes_raw: Counter,
    /// `engine.upload_bytes_sent_total` — bytes actually shipped on the
    /// wire after quantization (equals raw on the fp32 path); the gap to
    /// `_raw_total` is the bytes-saved figure.
    pub upload_bytes_sent: Counter,
    /// `engine.precision_{fp32,fp16,int8,int4}_total` — decisions per
    /// negotiated upload precision, indexed by [`lp_graph::Precision::wire`]
    /// order.
    pub precision_decisions: [Counter; 4],
}

impl EngineMetrics {
    /// Registers (or re-acquires) the engine instruments in `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            requests: registry.counter("engine.requests_total"),
            offloaded: registry.counter("engine.offloaded_total"),
            local: registry.counter("engine.local_total"),
            fallbacks: registry.counter("engine.fallbacks_total"),
            rejected: registry.counter("engine.rejected_total"),
            breaker_transitions: registry.counter("breaker.transitions_total"),
            breaker_state: registry.gauge("breaker.state"),
            retries: registry.counter("engine.retries_total"),
            cache_hits: registry.counter("engine.cache_hits_total"),
            cache_misses: registry.counter("engine.cache_misses_total"),
            decision_memo_hits: registry.counter("engine.decision_memo_hits_total"),
            decision_seconds: registry.histogram("engine.decision_seconds", &DECISION_BUCKETS_SECS),
            device_seconds: registry.histogram("engine.device_seconds", &LATENCY_BUCKETS_SECS),
            upload_seconds: registry.histogram("engine.upload_seconds", &LATENCY_BUCKETS_SECS),
            server_seconds: registry.histogram("engine.server_seconds", &LATENCY_BUCKETS_SECS),
            k: registry.gauge("engine.k"),
            bandwidth_mbps: registry.gauge("engine.bandwidth_mbps"),
            partition_point: registry.gauge("engine.partition_point"),
            upload_bytes_raw: registry.counter("engine.upload_bytes_raw_total"),
            upload_bytes_sent: registry.counter("engine.upload_bytes_sent_total"),
            precision_decisions: [
                registry.counter("engine.precision_fp32_total"),
                registry.counter("engine.precision_fp16_total"),
                registry.counter("engine.precision_int8_total"),
                registry.counter("engine.precision_int4_total"),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::{SimDuration, SimTime};

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(!t.traces());
        assert!(t.registry().is_none());
        assert!(t.snapshot().is_none());
        t.incr("x", 1); // no-ops, no panic
        t.set_gauge("y", 2.0);
    }

    #[test]
    fn enabled_without_sink_records_metrics_but_not_traces() {
        let t = Telemetry::enabled();
        assert!(t.is_enabled());
        assert!(!t.traces());
        t.incr("requests", 3);
        assert_eq!(t.snapshot().unwrap().counter("requests"), 3);
    }

    #[test]
    fn with_sink_shares_the_registry() {
        let base = Telemetry::enabled();
        base.incr("before", 1);
        let sink = RingSink::new(8);
        let traced = base.with_sink(sink.clone());
        assert!(traced.traces());
        // Same registry: counts accumulate across both handles.
        traced.incr("before", 1);
        assert_eq!(base.snapshot().unwrap().counter("before"), 2);
        traced.emit(SpanEvent {
            client: 0,
            request_id: 1,
            kind: SpanKind::Decide,
            at: SimTime::ZERO,
            duration: SimDuration::ZERO,
            p: 3,
            k: 1.0,
            bandwidth_mbps: 8.0,
            bytes: 0,
            fallback_local: false,
        });
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn engine_metrics_register_under_stable_names() {
        let t = Telemetry::enabled();
        let m = EngineMetrics::register(t.registry().unwrap());
        m.requests.incr(2);
        m.k.set(1.5);
        m.device_seconds.observe(0.01);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counter("engine.requests_total"), 2);
        assert_eq!(snap.gauge("engine.k"), Some(1.5));
        assert_eq!(snap.histogram("engine.device_seconds").unwrap().count, 1);
    }
}

//! The metrics half of the observability layer: counters, gauges and
//! fixed-bucket histograms behind cheap `Arc`-shared handles.
//!
//! A [`MetricsRegistry`] is a name → instrument map; registering returns a
//! clonable handle whose operations are single relaxed atomic updates, so
//! instrumented hot paths (the per-request engine pipeline) pay no lock
//! and no allocation once the handle exists. Reading happens through
//! [`MetricsRegistry::snapshot`], which tests assert against and the
//! `loadpart report` subcommand renders as a table.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (requests served, faults seen, …).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `by` to the counter.
    pub fn incr(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float instrument (live `k`, bandwidth estimate, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the gauge value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value (0.0 before the first `set`).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default bucket bounds (seconds) for simulated per-phase times: 1 ms up
/// to 5 s, roughly geometric.
pub const LATENCY_BUCKETS_SECS: [f64; 11] = [
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
];

/// Default bucket bounds (seconds) for wall-clock decision latency: 1 µs
/// up to 10 ms (Algorithm 1 is O(n); anything slower is a regression).
pub const DECISION_BUCKETS_SECS: [f64; 8] = [1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; an implicit +inf bucket follows the last.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    observations: AtomicU64,
    sum_nanos: AtomicU64,
}

/// A fixed-bucket histogram of non-negative values (seconds by
/// convention). Observation is two relaxed atomic adds plus a linear
/// bucket scan over a handful of bounds.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                observations: AtomicU64::new(0),
                sum_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.observations.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sum_nanos
            .fetch_add((v.max(0.0) * 1e9) as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.inner.observations.load(Ordering::Relaxed),
            sum_secs: self.inner.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending upper bounds; the final count bucket is the overflow.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (seconds).
    pub sum_secs: f64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 with no observations.
    #[must_use]
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_secs / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of instruments shared by everything observing one
/// run. Cloning shares the underlying map; handles returned by the
/// `counter`/`gauge`/`histogram` accessors stay valid for the registry's
/// lifetime and bypass the registry lock entirely.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, creating it with `bounds` on
    /// first use (an existing histogram keeps its original bounds).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// A point-in-time copy of every instrument.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`] — the unit tests
/// assert against and `loadpart report` renders.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 if never registered).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's state, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as an aligned text table (the `loadpart
    /// report` output).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:40} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:40} {v:>12.3}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:                                       count      mean ms\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:40} {:>12} {:>12.3}",
                    h.count,
                    h.mean_secs() * 1e3
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.incr(2);
        b.incr(3);
        assert_eq!(reg.snapshot().counter("requests"), 5);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("k");
        assert_eq!(g.get(), 0.0);
        g.set(3.5);
        g.set(1.25);
        assert_eq!(reg.snapshot().gauge("k"), Some(1.25));
    }

    #[test]
    fn histogram_buckets_count_and_mean() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[0.01, 0.1, 1.0]);
        h.observe(0.005); // bucket 0
        h.observe(0.05); // bucket 1
        h.observe(0.5); // bucket 2
        h.observe(5.0); // overflow
        let s = reg.snapshot();
        let snap = s.histogram("lat").expect("registered");
        assert_eq!(snap.counts, vec![1, 1, 1, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.mean_secs() - 5.555 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_keeps_original_bounds() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("h", &[1.0, 2.0]);
        let b = reg.histogram("h", &[9.0]);
        a.observe(1.5);
        assert_eq!(b.snapshot().bounds, vec![1.0, 2.0]);
        assert_eq!(b.snapshot().count, 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn snapshot_names_missing_instruments() {
        let s = MetricsRegistry::new().snapshot();
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.gauge("nope"), None);
        assert!(s.histogram("nope").is_none());
    }

    #[test]
    fn table_renders_all_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.requests_total").incr(7);
        reg.gauge("profile.k").set(2.0);
        reg.histogram("engine.device_seconds", &LATENCY_BUCKETS_SECS)
            .observe(0.02);
        let table = reg.snapshot().render_table();
        assert!(table.contains("engine.requests_total"), "{table}");
        assert!(table.contains("profile.k"), "{table}");
        assert!(table.contains("engine.device_seconds"), "{table}");
    }
}

//! The end-to-end offloading system co-simulation.
//!
//! [`Testbed`] bundles the simulated hardware — the link, the edge GPU with
//! its background-load contexts, and the device/GPU latency models.
//! [`OffloadingSystem`] is the [`OffloadEngine`] composed with the
//! co-simulated backends: a [`SimulatedDevice`] over the device latency
//! model, a [`LinkTransport`] over the jittered link, and a [`GpuBackend`]
//! over an exclusive GPU context with the §IV watchdog armed. The
//! per-request pipeline itself — profiler refresh, Algorithm 1 decision,
//! partition caches, prefix/upload/suffix, load-tracker feedback — lives in
//! the engine; this module only owns the hardware and the server-side
//! state.

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::baselines::Policy;
use crate::cache::PartitionCache;
use crate::engine::backends::{GpuBackend, LinkTransport, SimulatedDevice};
use crate::engine::OffloadEngine;
use lp_graph::ComputationGraph;
use lp_hardware::load::install_background;
use lp_hardware::{DeviceModel, GpuModel, GpuSim, LoadLevel};
use lp_net::{BandwidthTrace, Link};
use lp_profiler::dataset::{DeviceSource, EdgeSource};
use lp_profiler::{train_all, GpuUtilWatchdog, LoadFactorTracker, PredictionModels};
use lp_sim::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

pub use crate::engine::{EngineConfig as SystemConfig, InferenceRecord};

/// The simulated hardware: link + edge GPU (+ background load) + models.
#[derive(Debug)]
pub struct Testbed {
    /// The device<->server link.
    pub link: Link,
    /// The edge GPU simulator.
    pub gpu: GpuSim,
    /// Kernel-latency model of the edge GPU.
    pub gpu_model: GpuModel,
    /// Latency model of the user-end device.
    pub device_model: DeviceModel,
    /// The foreground context offloaded partitions run in.
    pub fg_ctx: usize,
    bg_ctxs: Vec<usize>,
    load: LoadLevel,
}

impl Testbed {
    /// Builds a testbed over the given link; background load starts idle.
    #[must_use]
    pub fn new(link: Link, seed: u64) -> Self {
        let mut gpu = GpuSim::with_default_slice(seed);
        let fg_ctx = gpu.add_context();
        Self {
            link,
            gpu,
            gpu_model: GpuModel::default(),
            device_model: DeviceModel::default(),
            fg_ctx,
            bg_ctxs: Vec::new(),
            load: LoadLevel::Idle,
        }
    }

    /// Convenience: a testbed with a constant-bandwidth symmetric link.
    #[must_use]
    pub fn with_constant_bandwidth(mbps: f64, seed: u64) -> Self {
        Self::new(Link::symmetric(BandwidthTrace::constant(mbps)), seed)
    }

    /// Switches the background load level, effective from the current
    /// simulation instant.
    pub fn set_load(&mut self, level: LoadLevel) {
        for &ctx in &self.bg_ctxs {
            self.gpu.clear_generator(ctx);
        }
        self.load = level;
        // 100%(h)'s 1 µs submission storm congests the kernel-launch path
        // for everyone (§II); the other levels leave it uncontended.
        let tax = if level == LoadLevel::Pct100High {
            SimDuration::from_micros(1200)
        } else {
            SimDuration::ZERO
        };
        self.gpu.set_kernel_tax(tax);
        if level == LoadLevel::Idle {
            return;
        }
        let now = self.gpu.now();
        if self.bg_ctxs.is_empty() {
            self.bg_ctxs = install_background(&mut self.gpu, level, &self.gpu_model, now);
        } else {
            let gens = lp_hardware::background_generators(level, &self.gpu_model);
            for (&ctx, g) in self.bg_ctxs.iter().zip(gens) {
                self.gpu.set_generator(ctx, g, now);
            }
        }
    }

    /// The current background load level.
    #[must_use]
    pub fn load(&self) -> LoadLevel {
        self.load
    }
}

/// The running system: the offload engine driving inferences over a
/// testbed.
#[derive(Debug)]
pub struct OffloadingSystem {
    engine: OffloadEngine,
    /// The simulated hardware (public for scenario drivers to switch load).
    pub testbed: Testbed,
    tracker: LoadFactorTracker,
    watchdog: GpuUtilWatchdog,
    server_cache: PartitionCache,
    admission: Option<AdmissionController>,
}

impl OffloadingSystem {
    /// Assembles a system for one DNN.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`EngineConfig::validate`](crate::engine::EngineConfig::validate);
    /// construct an [`OffloadEngine`] directly for `Result`-based
    /// handling).
    #[must_use]
    pub fn new(
        graph: ComputationGraph,
        policy: Policy,
        testbed: Testbed,
        user_models: &PredictionModels,
        edge_models: PredictionModels,
        config: SystemConfig,
    ) -> Self {
        let engine = OffloadEngine::new(graph, policy, user_models, &edge_models, 0, config)
            .expect("valid system config");
        Self::from_engine(engine, testbed)
    }

    /// Assembles a system around an externally supplied
    /// [`PartitionPolicy`](crate::policy::PartitionPolicy) — stateful
    /// learners included (the engine feeds them completed records through
    /// the guarded feedback hook).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_policy(
        graph: ComputationGraph,
        policy: Box<dyn crate::policy::PartitionPolicy>,
        testbed: Testbed,
        user_models: &PredictionModels,
        edge_models: PredictionModels,
        config: SystemConfig,
    ) -> Self {
        let engine =
            OffloadEngine::with_policy(graph, policy, user_models, &edge_models, 0, config)
                .expect("valid system config");
        Self::from_engine(engine, testbed)
    }

    fn from_engine(engine: OffloadEngine, testbed: Testbed) -> Self {
        let tracker = LoadFactorTracker::new(engine.config().tracker_period);
        Self {
            engine,
            testbed,
            tracker,
            watchdog: GpuUtilWatchdog::new(),
            server_cache: PartitionCache::new(),
            admission: None,
        }
    }

    /// Arms server-side admission control with the given budget; offload
    /// requests past it are shed
    /// ([`SuffixOutcome::Rejected`](crate::engine::SuffixOutcome::Rejected))
    /// and complete locally.
    pub fn set_admission(&mut self, config: AdmissionConfig) {
        self.admission = Some(AdmissionController::new(config));
    }

    /// The underlying engine (solver, profile, caches).
    #[must_use]
    pub fn engine(&self) -> &OffloadEngine {
        &self.engine
    }

    /// Installs an observability handle on the underlying engine
    /// (metrics + trace spans; see [`crate::telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: crate::telemetry::Telemetry) {
        self.engine.set_telemetry(telemetry);
    }

    /// The solver (for inspecting predictions).
    #[must_use]
    pub fn solver(&self) -> &crate::algorithm::PartitionSolver {
        self.engine.solver()
    }

    /// The device-side partition cache.
    #[must_use]
    pub fn device_cache(&self) -> &PartitionCache {
        self.engine.device_cache()
    }

    /// The load factor the device currently believes.
    #[must_use]
    pub fn current_k(&self) -> f64 {
        self.engine.profile().k()
    }

    /// Performs one inference request arriving at `at` and returns its
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the testbed's current simulated time.
    pub fn infer(&mut self, at: SimTime) -> InferenceRecord {
        let Testbed {
            link,
            gpu,
            gpu_model,
            device_model,
            fg_ctx,
            ..
        } = &mut self.testbed;
        let mut device = SimulatedDevice {
            model: device_model,
        };
        let mut transport = LinkTransport { link };
        let mut backend = GpuBackend {
            gpu,
            gpu_model,
            ctx: *fg_ctx,
            tracker: &mut self.tracker,
            watchdog: Some(&mut self.watchdog),
            server_cache: &self.server_cache,
            admission: self.admission.as_mut(),
        };
        self.engine
            .run(at, &mut device, &mut backend, &mut transport)
            .expect("co-simulated backends are infallible")
    }
}

/// Trains both model bundles on the default hardware calibration — the
/// offline-profiler step shared by examples, tests and benches.
///
/// `samples_per_kind` trades accuracy for speed (400+ reproduces Table III;
/// 64 is enough for doctests).
///
/// Training is deterministic in `(samples_per_kind, seed)`, so results are
/// memoized process-wide: every experiment binary and test that asks for
/// the same profile gets clones of one trained bundle instead of
/// re-running NNLS from scratch.
#[must_use]
pub fn trained_models(samples_per_kind: usize, seed: u64) -> (PredictionModels, PredictionModels) {
    type ModelCache = Mutex<HashMap<(usize, u64), (PredictionModels, PredictionModels)>>;
    static CACHE: OnceLock<ModelCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    map.entry((samples_per_kind, seed))
        .or_insert_with(|| {
            let mut dev = DeviceSource::new(DeviceModel::default(), seed);
            let (user_models, _) = train_all(&mut dev, samples_per_kind, seed);
            let mut edge = EdgeSource::new(GpuModel::default(), seed ^ 0xBEEF);
            let (edge_models, _) = train_all(&mut edge, samples_per_kind, seed ^ 0xBEEF);
            (user_models, edge_models)
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| trained_models(200, 42))
    }

    fn system(policy: Policy, mbps: f64, graph: ComputationGraph) -> OffloadingSystem {
        let (user, edge) = models();
        OffloadingSystem::new(
            graph,
            policy,
            Testbed::with_constant_bandwidth(mbps, 5),
            user,
            edge.clone(),
            SystemConfig::default(),
        )
    }

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn alexnet_at_8mbps_partial_offloads() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        let r = sys.infer(secs(1));
        assert!(r.p > 0 && r.p < 27, "p={}", r.p);
        assert!(r.total > SimDuration::ZERO);
        assert!(r.upload > SimDuration::ZERO);
        assert!(r.server > SimDuration::ZERO);
    }

    #[test]
    fn partial_beats_local_and_full_for_alexnet() {
        // Figure 1's core claim at 8 Mbps on an idle server.
        let avg = |policy: Policy| {
            let mut sys = system(policy, 8.0, lp_models::alexnet(1));
            let mut total = 0.0;
            for i in 0..20 {
                total += sys
                    .infer(secs(1) + SimDuration::from_millis(400 * i))
                    .total
                    .as_secs_f64();
            }
            total / 20.0
        };
        let lp = avg(Policy::LoadPart);
        let local = avg(Policy::Local);
        let full = avg(Policy::Full);
        assert!(lp < local, "LoADPart {lp:.3}s vs local {local:.3}s");
        assert!(lp < full, "LoADPart {lp:.3}s vs full {full:.3}s");
        // Figure 1 reports ~4x over full offloading and ~30% over local.
        assert!(full / lp > 1.5, "speedup over full = {:.2}", full / lp);
    }

    #[test]
    fn local_policy_never_uses_network() {
        let mut sys = system(Policy::Local, 8.0, lp_models::alexnet(1));
        let r = sys.infer(secs(1));
        assert_eq!(r.p, 27);
        assert_eq!(r.upload, SimDuration::ZERO);
        assert_eq!(r.server, SimDuration::ZERO);
    }

    #[test]
    fn cache_hits_after_first_request() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        let a = sys.infer(secs(1));
        let b = sys.infer(secs(2));
        assert!(!a.cache_hit);
        assert!(b.cache_hit, "same decision should hit the cache");
    }

    #[test]
    fn heavy_load_raises_k_and_moves_p() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        // Warm up on an idle server.
        let idle_p = sys.infer(secs(1)).p;
        // Saturate the GPU and keep inferring; after the next profiler
        // period the device sees k > 1.
        sys.testbed.set_load(LoadLevel::Pct100High);
        let mut last = None;
        for i in 0..30 {
            let r = sys.infer(secs(2) + SimDuration::from_millis(600 * i));
            last = Some(r);
        }
        let r = last.unwrap();
        assert!(r.k_used > 1.3, "k={}", r.k_used);
        assert!(r.p >= idle_p, "p should not move earlier under load");
    }

    #[test]
    fn watchdog_recovers_k_after_load_drops() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        sys.testbed.set_load(LoadLevel::Pct100High);
        for i in 0..30 {
            sys.infer(secs(1) + SimDuration::from_millis(600 * i));
        }
        let k_busy = sys.current_k();
        assert!(k_busy > 2.0, "k={k_busy}");
        // Load vanishes; the device may have gone local, but the watchdog
        // resets the tracker and the next k fetch sees the idle baseline
        // again (~1.3-1.5: the NNLS models' systematic underprediction,
        // which `k` absorbs by design).
        sys.testbed.set_load(LoadLevel::Idle);
        for i in 0..8 {
            sys.infer(secs(30) + SimDuration::from_secs(5 * i));
        }
        let k_recovered = sys.current_k();
        assert!(
            k_recovered < 2.0 && k_recovered < k_busy / 2.0,
            "k should recover: busy {k_busy} -> {k_recovered}"
        );
    }

    #[test]
    fn neurosurgeon_ignores_load_in_decisions() {
        let mut sys = system(Policy::Neurosurgeon, 8.0, lp_models::alexnet(1));
        let p_idle = sys.infer(secs(1)).p;
        sys.testbed.set_load(LoadLevel::Pct100High);
        for i in 0..20 {
            let r = sys.infer(secs(2) + SimDuration::from_millis(700 * i));
            assert_eq!(r.p, p_idle, "baseline must keep its partition point");
        }
    }

    #[test]
    fn records_are_internally_consistent() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        let r = sys.infer(secs(1));
        let parts = r.device + r.upload + r.server + r.download;
        // total is end-to-end; parts should account for it (no download).
        assert!(
            (parts.as_secs_f64() - r.total.as_secs_f64()).abs() < 1e-6,
            "{parts} vs {r:?}"
        );
    }
}

//! The end-to-end offloading system co-simulation.
//!
//! [`Testbed`] bundles the simulated hardware — the link, the edge GPU with
//! its background-load contexts, and the device/GPU latency models.
//! [`OffloadingSystem`] runs LoADPart (or a baseline [`Policy`]) on top of
//! it: per §III-A / §IV, each inference request
//!
//! 1. reads the profiler's sliding-window bandwidth estimate and the load
//!    factor `k` most recently fetched from the server (refreshed every
//!    profiler period, 5 s by default);
//! 2. picks the partition point with the policy (Algorithm 1 for LoADPart);
//! 3. fetches the partitioned graphs from the partition caches;
//! 4. executes `L_1..L_p` on the device model, uploads the crossing
//!    tensors over the link (passively feeding the bandwidth estimator),
//!    submits the suffix kernels to the GPU simulator and waits for them
//!    through whatever queueing the background load causes;
//! 5. reports the observed server time to the load-factor tracker, which
//!    the GPU-utilization watchdog resets when the server goes idle.

use crate::algorithm::{Decision, PartitionSolver};
use crate::baselines::Policy;
use crate::cache::PartitionCache;
use lp_graph::ComputationGraph;
use lp_hardware::load::install_background;
use lp_hardware::{DeviceModel, GpuModel, GpuSim, LoadLevel};
use lp_net::{BandwidthTrace, Link, ProbeProfiler};
use lp_profiler::dataset::{DeviceSource, EdgeSource};
use lp_profiler::{train_all, GpuUtilWatchdog, LoadFactorTracker, PredictionModels};
use lp_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Tunables of the runtime system (defaults follow §V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Runtime-profiler period (bandwidth probe + `k` fetch), default 5 s.
    pub profiler_period: SimDuration,
    /// Sliding-window length of the bandwidth estimator.
    pub bandwidth_window: usize,
    /// Monitoring period of the server-side load tracker.
    pub tracker_period: SimDuration,
    /// Whether to add the result-download leg to measured latency
    /// (§IV ignores it; kept for ablations).
    pub model_download: bool,
    /// RNG seed for measurement noise.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            profiler_period: SimDuration::from_secs(5),
            bandwidth_window: 8,
            tracker_period: SimDuration::from_secs(5),
            model_download: false,
            seed: 7,
        }
    }
}

/// The simulated hardware: link + edge GPU (+ background load) + models.
#[derive(Debug)]
pub struct Testbed {
    /// The device<->server link.
    pub link: Link,
    /// The edge GPU simulator.
    pub gpu: GpuSim,
    /// Kernel-latency model of the edge GPU.
    pub gpu_model: GpuModel,
    /// Latency model of the user-end device.
    pub device_model: DeviceModel,
    /// The foreground context offloaded partitions run in.
    pub fg_ctx: usize,
    bg_ctxs: Vec<usize>,
    load: LoadLevel,
}

impl Testbed {
    /// Builds a testbed over the given link; background load starts idle.
    #[must_use]
    pub fn new(link: Link, seed: u64) -> Self {
        let mut gpu = GpuSim::with_default_slice(seed);
        let fg_ctx = gpu.add_context();
        Self {
            link,
            gpu,
            gpu_model: GpuModel::default(),
            device_model: DeviceModel::default(),
            fg_ctx,
            bg_ctxs: Vec::new(),
            load: LoadLevel::Idle,
        }
    }

    /// Convenience: a testbed with a constant-bandwidth symmetric link.
    #[must_use]
    pub fn with_constant_bandwidth(mbps: f64, seed: u64) -> Self {
        Self::new(Link::symmetric(BandwidthTrace::constant(mbps)), seed)
    }

    /// Switches the background load level, effective from the current
    /// simulation instant.
    pub fn set_load(&mut self, level: LoadLevel) {
        for &ctx in &self.bg_ctxs {
            self.gpu.clear_generator(ctx);
        }
        self.load = level;
        // 100%(h)'s 1 µs submission storm congests the kernel-launch path
        // for everyone (§II); the other levels leave it uncontended.
        let tax = if level == LoadLevel::Pct100High {
            SimDuration::from_micros(1200)
        } else {
            SimDuration::ZERO
        };
        self.gpu.set_kernel_tax(tax);
        if level == LoadLevel::Idle {
            return;
        }
        let now = self.gpu.now();
        if self.bg_ctxs.is_empty() {
            self.bg_ctxs = install_background(&mut self.gpu, level, &self.gpu_model, now);
        } else {
            let gens = lp_hardware::background_generators(level, &self.gpu_model);
            for (&ctx, g) in self.bg_ctxs.iter().zip(gens) {
                self.gpu.set_generator(ctx, g, now);
            }
        }
    }

    /// The current background load level.
    #[must_use]
    pub fn load(&self) -> LoadLevel {
        self.load
    }
}

/// Everything measured about one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRecord {
    /// Request submission time.
    pub start: SimTime,
    /// Chosen partition point.
    pub p: usize,
    /// Load factor the decision used.
    pub k_used: f64,
    /// Bandwidth estimate (Mbps) the decision used.
    pub bandwidth_est_mbps: f64,
    /// Latency the policy predicted.
    pub predicted: SimDuration,
    /// Measured device-side compute time.
    pub device: SimDuration,
    /// Measured upload time (including link latency).
    pub upload: SimDuration,
    /// Measured server time (queueing + execution).
    pub server: SimDuration,
    /// Measured download time (zero unless `model_download`).
    pub download: SimDuration,
    /// Measured end-to-end latency.
    pub total: SimDuration,
    /// Whether the device-side partition cache hit.
    pub cache_hit: bool,
}

/// The running system: a policy driving inferences over a testbed.
#[derive(Debug)]
pub struct OffloadingSystem {
    graph: ComputationGraph,
    solver: PartitionSolver,
    policy: Policy,
    config: SystemConfig,
    /// The simulated hardware (public for scenario drivers to switch load).
    pub testbed: Testbed,
    probe: ProbeProfiler,
    tracker: LoadFactorTracker,
    watchdog: GpuUtilWatchdog,
    device_cache: PartitionCache,
    server_cache: PartitionCache,
    cached_k: f64,
    last_profile: Option<SimTime>,
    rng: StdRng,
}

impl OffloadingSystem {
    /// Assembles a system for one DNN.
    #[must_use]
    pub fn new(
        graph: ComputationGraph,
        policy: Policy,
        testbed: Testbed,
        user_models: &PredictionModels,
        edge_models: PredictionModels,
        config: SystemConfig,
    ) -> Self {
        let solver = PartitionSolver::new(&graph, user_models, &edge_models);
        let probe = ProbeProfiler::new(config.bandwidth_window);
        let tracker = LoadFactorTracker::new(config.tracker_period);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            graph,
            solver,
            policy,
            config,
            testbed,
            probe,
            tracker,
            watchdog: GpuUtilWatchdog::new(),
            device_cache: PartitionCache::new(),
            server_cache: PartitionCache::new(),
            cached_k: 1.0,
            last_profile: None,
            rng,
        }
    }

    /// The solver (for inspecting predictions).
    #[must_use]
    pub fn solver(&self) -> &PartitionSolver {
        &self.solver
    }

    /// The device-side partition cache.
    #[must_use]
    pub fn device_cache(&self) -> &PartitionCache {
        &self.device_cache
    }

    /// The load factor the device currently believes.
    #[must_use]
    pub fn current_k(&self) -> f64 {
        self.cached_k
    }

    /// Runs the periodic profiler work due at `now`: bandwidth probe,
    /// `k` fetch from the server, and the server-side GPU watchdog.
    fn run_periodic(&mut self, now: SimTime) {
        let due = match self.last_profile {
            None => true,
            Some(prev) => now.since(prev) >= self.config.profiler_period,
        };
        if due {
            self.last_profile = Some(now);
            let (_mbps, _end) = self.probe.probe(&self.testbed.link, now, &mut self.rng);
            // Device asks the server for the latest k.
            self.cached_k = self.tracker.k_at(now);
        }
        // The watchdog thread runs on the server regardless of requests.
        self.watchdog
            .poll(now, self.testbed.gpu.busy_time(), &mut self.tracker);
    }

    /// Performs one inference request arriving at `at` and returns its
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the testbed's current simulated time.
    pub fn infer(&mut self, at: SimTime) -> InferenceRecord {
        self.testbed.gpu.advance_to(at);
        self.run_periodic(at);
        let bandwidth = self
            .probe
            .estimator
            .estimate_mbps()
            .expect("probe ran in run_periodic");
        let decision: Decision = self.policy.decide(&self.solver, bandwidth, self.cached_k);
        let p = decision.p;
        let n = self.graph.len();

        // Partition caches on both sides (Figure 5 extraction).
        let hits_before = self.device_cache.stats().hits;
        let partition = self
            .device_cache
            .get_or_partition(&self.graph, p)
            .expect("p in range");
        let cache_hit = self.device_cache.stats().hits > hits_before;
        let _server_side = self
            .server_cache
            .get_or_partition(&self.graph, p)
            .expect("p in range");

        // Device-side execution of L_1..L_p.
        let mut device_time = SimDuration::ZERO;
        for node in self.graph.nodes().iter().take(p) {
            device_time += self.testbed.device_model.sample(
                &node.kind,
                self.graph.value_desc(node.inputs[0]),
                &node.output,
                &mut self.rng,
            );
        }

        if p == n {
            // Local inference: nothing leaves the device.
            return self.finish_record(at, decision, bandwidth, device_time, None, cache_hit);
        }

        // Upload the crossing tensors.
        let upload_bytes = partition.upload_bytes(&self.graph);
        let upload_start = at + device_time;
        let upload_end = self
            .testbed
            .link
            .upload_end(upload_bytes, upload_start, &mut self.rng);
        self.probe.record_passive(
            upload_bytes,
            upload_start,
            upload_end,
            self.testbed.link.latency,
        );

        // Server-side execution of L_{p+1}..L_n under real queueing.
        self.testbed.gpu.advance_to(upload_end);
        let kernels: Vec<SimDuration> = self
            .graph
            .nodes()
            .iter()
            .take(n)
            .skip(p)
            .map(|node| {
                self.testbed.gpu_model.sample(
                    &node.kind,
                    self.graph.value_desc(node.inputs[0]),
                    &node.output,
                    &mut self.rng,
                )
            })
            .collect();
        // advance_to can overshoot a slice boundary; the request becomes
        // visible to the scheduler at the GPU's current instant (the gap is
        // genuine queueing behind the in-flight kernel).
        let submit_at = upload_end.max(self.testbed.gpu.now());
        let task = self.testbed.gpu.submit(self.testbed.fg_ctx, submit_at, kernels);
        let completion = self.testbed.gpu.run_until_complete(task);
        let server_time = completion.since(upload_end);

        // The server-side monitor observes this partition execution.
        let predicted_unscaled =
            SimDuration::from_secs_f64(self.solver.suffix_edge_secs(p));
        self.tracker.record(completion, server_time, predicted_unscaled);

        self.finish_record(
            at,
            decision,
            bandwidth,
            device_time,
            Some((upload_end.since(upload_start), server_time, completion)),
            cache_hit,
        )
    }

    fn finish_record(
        &mut self,
        at: SimTime,
        decision: Decision,
        bandwidth: f64,
        device_time: SimDuration,
        offload: Option<(SimDuration, SimDuration, SimTime)>,
        cache_hit: bool,
    ) -> InferenceRecord {
        let (upload, server, end) = match offload {
            Some((u, s, completion)) => (u, s, completion),
            None => (SimDuration::ZERO, SimDuration::ZERO, at + device_time),
        };
        let (download, end) = if self.config.model_download && offload.is_some() {
            let dl_end =
                self.testbed
                    .link
                    .download_end(self.graph.output().size_bytes(), end, &mut self.rng);
            (dl_end.since(end), dl_end)
        } else {
            (SimDuration::ZERO, end)
        };
        InferenceRecord {
            start: at,
            p: decision.p,
            k_used: self.cached_k,
            bandwidth_est_mbps: bandwidth,
            predicted: decision.predicted,
            device: device_time,
            upload,
            server,
            download,
            total: end.since(at),
            cache_hit,
        }
    }
}

/// Trains both model bundles on the default hardware calibration — the
/// offline-profiler step shared by examples, tests and benches.
///
/// `samples_per_kind` trades accuracy for speed (400+ reproduces Table III;
/// 64 is enough for doctests).
#[must_use]
pub fn trained_models(samples_per_kind: usize, seed: u64) -> (PredictionModels, PredictionModels) {
    let mut dev = DeviceSource::new(DeviceModel::default(), seed);
    let (user_models, _) = train_all(&mut dev, samples_per_kind, seed);
    let mut edge = EdgeSource::new(GpuModel::default(), seed ^ 0xBEEF);
    let (edge_models, _) = train_all(&mut edge, samples_per_kind, seed ^ 0xBEEF);
    (user_models, edge_models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn models() -> &'static (PredictionModels, PredictionModels) {
        static MODELS: OnceLock<(PredictionModels, PredictionModels)> = OnceLock::new();
        MODELS.get_or_init(|| trained_models(200, 42))
    }

    fn system(policy: Policy, mbps: f64, graph: ComputationGraph) -> OffloadingSystem {
        let (user, edge) = models();
        OffloadingSystem::new(
            graph,
            policy,
            Testbed::with_constant_bandwidth(mbps, 5),
            user,
            edge.clone(),
            SystemConfig::default(),
        )
    }

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn alexnet_at_8mbps_partial_offloads() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        let r = sys.infer(secs(1));
        assert!(r.p > 0 && r.p < 27, "p={}", r.p);
        assert!(r.total > SimDuration::ZERO);
        assert!(r.upload > SimDuration::ZERO);
        assert!(r.server > SimDuration::ZERO);
    }

    #[test]
    fn partial_beats_local_and_full_for_alexnet() {
        // Figure 1's core claim at 8 Mbps on an idle server.
        let avg = |policy: Policy| {
            let mut sys = system(policy, 8.0, lp_models::alexnet(1));
            let mut total = 0.0;
            for i in 0..20 {
                total += sys
                    .infer(secs(1) + SimDuration::from_millis(400 * i))
                    .total
                    .as_secs_f64();
            }
            total / 20.0
        };
        let lp = avg(Policy::LoadPart);
        let local = avg(Policy::Local);
        let full = avg(Policy::Full);
        assert!(lp < local, "LoADPart {lp:.3}s vs local {local:.3}s");
        assert!(lp < full, "LoADPart {lp:.3}s vs full {full:.3}s");
        // Figure 1 reports ~4x over full offloading and ~30% over local.
        assert!(full / lp > 1.5, "speedup over full = {:.2}", full / lp);
    }

    #[test]
    fn local_policy_never_uses_network() {
        let mut sys = system(Policy::Local, 8.0, lp_models::alexnet(1));
        let r = sys.infer(secs(1));
        assert_eq!(r.p, 27);
        assert_eq!(r.upload, SimDuration::ZERO);
        assert_eq!(r.server, SimDuration::ZERO);
    }

    #[test]
    fn cache_hits_after_first_request() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        let a = sys.infer(secs(1));
        let b = sys.infer(secs(2));
        assert!(!a.cache_hit);
        assert!(b.cache_hit, "same decision should hit the cache");
    }

    #[test]
    fn heavy_load_raises_k_and_moves_p() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        // Warm up on an idle server.
        let idle_p = sys.infer(secs(1)).p;
        // Saturate the GPU and keep inferring; after the next profiler
        // period the device sees k > 1.
        sys.testbed.set_load(LoadLevel::Pct100High);
        let mut last = None;
        for i in 0..30 {
            let r = sys.infer(secs(2) + SimDuration::from_millis(600 * i));
            last = Some(r);
        }
        let r = last.unwrap();
        assert!(r.k_used > 1.3, "k={}", r.k_used);
        assert!(r.p >= idle_p, "p should not move earlier under load");
    }

    #[test]
    fn watchdog_recovers_k_after_load_drops() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        sys.testbed.set_load(LoadLevel::Pct100High);
        for i in 0..30 {
            sys.infer(secs(1) + SimDuration::from_millis(600 * i));
        }
        let k_busy = sys.current_k();
        assert!(k_busy > 2.0, "k={k_busy}");
        // Load vanishes; the device may have gone local, but the watchdog
        // resets the tracker and the next k fetch sees the idle baseline
        // again (~1.3-1.5: the NNLS models' systematic underprediction,
        // which `k` absorbs by design).
        sys.testbed.set_load(LoadLevel::Idle);
        for i in 0..8 {
            sys.infer(secs(30) + SimDuration::from_secs(5 * i));
        }
        let k_recovered = sys.current_k();
        assert!(
            k_recovered < 2.0 && k_recovered < k_busy / 2.0,
            "k should recover: busy {k_busy} -> {k_recovered}"
        );
    }

    #[test]
    fn neurosurgeon_ignores_load_in_decisions() {
        let mut sys = system(Policy::Neurosurgeon, 8.0, lp_models::alexnet(1));
        let p_idle = sys.infer(secs(1)).p;
        sys.testbed.set_load(LoadLevel::Pct100High);
        for i in 0..20 {
            let r = sys.infer(secs(2) + SimDuration::from_millis(700 * i));
            assert_eq!(r.p, p_idle, "baseline must keep its partition point");
        }
    }

    #[test]
    fn records_are_internally_consistent() {
        let mut sys = system(Policy::LoadPart, 8.0, lp_models::alexnet(1));
        let r = sys.infer(secs(1));
        let parts = r.device + r.upload + r.server + r.download;
        // total is end-to-end; parts should account for it (no download).
        assert!(
            (parts.as_secs_f64() - r.total.as_secs_f64()).abs() < 1e-6,
            "{parts} vs {r:?}"
        );
    }
}

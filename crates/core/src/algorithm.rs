//! Problem (1) and Algorithm 1 — the partition decision.
//!
//! Minimise over `p ∈ [0, n]`:
//!
//! ```text
//! t_p = Σ_{i<=p} f(L_i)  +  s_p/B_u  +  Σ_{i>p} g(L_i, k)  +  s_n/B_d     (p < n)
//! t_n = Σ_i f(L_i)                                                        (p = n)
//! ```
//!
//! with `f(L_i) = M_user(L_i)`, `g(L_i, k) = k * M_edge(L_i)` (§IV). The
//! solver stores prefix sums of `f`, suffix sums of `M_edge` and the
//! transmission series once per graph; each [`decide`](PartitionSolver::decide)
//! is then a single O(n) scan that multiplies the most recent `k` onto the
//! suffix sums — exactly the implementation the paper describes. Following
//! §IV the result-download term `s_n/B_d` is ignored by default (the output
//! tensor is tiny); [`decide_with_download`](PartitionSolver::decide_with_download)
//! keeps it for completeness.

use lp_graph::{transmission_series, ComputationGraph, Precision};
use lp_profiler::PredictionModels;
use lp_sim::SimDuration;

/// The outcome of one partition decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The optimal partition point (0 = full offloading, n = local).
    pub p: usize,
    /// Upload-tensor precision negotiated for the cut (fp32 unless a
    /// quantization-aware policy picked a narrower width).
    pub precision: Precision,
    /// Predicted end-to-end latency at `p`.
    pub predicted: SimDuration,
    /// Predicted device-side compute time.
    pub device: SimDuration,
    /// Predicted upload time.
    pub upload: SimDuration,
    /// Predicted (k-scaled) server-side compute time.
    pub server: SimDuration,
    /// Predicted download time (zero unless download is modelled).
    pub download: SimDuration,
}

/// Precomputed per-graph state for Algorithm 1.
///
/// Construction is O(n); each decision is an O(n) scan with O(1) work per
/// candidate point thanks to the prefix/suffix sums.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSolver {
    /// `prefix[i] = Σ_{j<=i} f(L_j)` in seconds; `prefix[0] = 0` (`L_0` is
    /// virtual).
    prefix_device: Vec<f64>,
    /// `suffix[i] = Σ_{j>i} M_edge(L_j)` in seconds (unscaled by `k`);
    /// `suffix[n] = 0`.
    suffix_edge: Vec<f64>,
    /// Transmission sizes `s_0..s_n` in bytes.
    transmission: Vec<u64>,
    /// Output tensor size `s_n` in bytes (for the optional download term).
    output_bytes: u64,
}

impl PartitionSolver {
    /// Builds the solver from a graph and the two prediction-model bundles.
    #[must_use]
    pub fn new(
        graph: &ComputationGraph,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
    ) -> Self {
        let f: Vec<f64> = user_models
            .predict_graph(graph)
            .into_iter()
            .map(SimDuration::as_secs_f64)
            .collect();
        let g: Vec<f64> = edge_models
            .predict_graph(graph)
            .into_iter()
            .map(SimDuration::as_secs_f64)
            .collect();
        Self::from_times(
            &f,
            &g,
            transmission_series(graph),
            graph.output().size_bytes(),
        )
    }

    /// Builds the solver directly from per-node times (testing, ablations).
    ///
    /// # Panics
    ///
    /// Panics if `device_times`/`edge_times` lengths differ or
    /// `transmission.len() != n + 1`.
    #[must_use]
    pub fn from_times(
        device_times: &[f64],
        edge_times: &[f64],
        transmission: Vec<u64>,
        output_bytes: u64,
    ) -> Self {
        let n = device_times.len();
        assert_eq!(edge_times.len(), n, "per-node time lengths differ");
        assert_eq!(transmission.len(), n + 1, "need s_0..s_n");
        let mut prefix_device = vec![0.0; n + 1];
        for i in 1..=n {
            prefix_device[i] = prefix_device[i - 1] + device_times[i - 1];
        }
        let mut suffix_edge = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix_edge[i] = suffix_edge[i + 1] + edge_times[i];
        }
        Self {
            prefix_device,
            suffix_edge,
            transmission,
            output_bytes,
        }
    }

    /// Number of computation nodes `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefix_device.len() - 1
    }

    /// Whether the graph behind this solver is empty (never true; graphs
    /// have at least one node).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predicted latency of a specific partition point (Problem (1) with
    /// the download term dropped, as in §IV).
    #[must_use]
    pub fn latency_at(&self, p: usize, bandwidth_up_mbps: f64, k: f64) -> Decision {
        self.latency_inner(p, bandwidth_up_mbps, None, k)
    }

    fn latency_inner(
        &self,
        p: usize,
        bandwidth_up_mbps: f64,
        bandwidth_down_mbps: Option<f64>,
        k: f64,
    ) -> Decision {
        let n = self.len();
        assert!(p <= n, "partition point out of range");
        assert!(bandwidth_up_mbps > 0.0, "upload bandwidth must be positive");
        assert!(k >= 1.0, "constraint (1c): k >= 1");
        let device = self.prefix_device[p];
        let (upload, server, download) = if p == n {
            (0.0, 0.0, 0.0)
        } else {
            let up = self.transmission[p] as f64 / lp_net::mbps_to_bytes_per_sec(bandwidth_up_mbps);
            let srv = k * self.suffix_edge[p];
            let down = bandwidth_down_mbps.map_or(0.0, |bd| {
                self.output_bytes as f64 / lp_net::mbps_to_bytes_per_sec(bd)
            });
            (up, srv, down)
        };
        Decision {
            p,
            precision: Precision::Fp32,
            predicted: SimDuration::from_secs_f64(device + upload + server + download),
            device: SimDuration::from_secs_f64(device),
            upload: SimDuration::from_secs_f64(upload),
            server: SimDuration::from_secs_f64(server),
            download: SimDuration::from_secs_f64(download),
        }
    }

    /// Algorithm 1: the optimal partition point for the current upload
    /// bandwidth (Mbps) and load factor `k`, ignoring the download term.
    ///
    /// Ties resolve to the **larger** `p` (the algorithm's `<=` update),
    /// i.e. towards keeping work on the device.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_up_mbps <= 0` or `k < 1`.
    #[must_use]
    pub fn decide(&self, bandwidth_up_mbps: f64, k: f64) -> Decision {
        self.decide_inner(bandwidth_up_mbps, None, k)
    }

    /// Algorithm 1 with the `s_n/B_d` download term retained.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth is non-positive or `k < 1`.
    #[must_use]
    pub fn decide_with_download(
        &self,
        bandwidth_up_mbps: f64,
        bandwidth_down_mbps: f64,
        k: f64,
    ) -> Decision {
        assert!(
            bandwidth_down_mbps > 0.0,
            "download bandwidth must be positive"
        );
        self.decide_inner(bandwidth_up_mbps, Some(bandwidth_down_mbps), k)
    }

    fn decide_inner(&self, bu: f64, bd: Option<f64>, k: f64) -> Decision {
        let n = self.len();
        let mut best = self.latency_inner(0, bu, bd, k);
        for p in 1..=n {
            let cand = self.latency_inner(p, bu, bd, k);
            if cand.predicted <= best.predicted {
                best = cand;
            }
        }
        best
    }

    /// DeepWear-style candidate pruning: the points worth scanning are the
    /// endpoints (full offloading, local inference) plus every point whose
    /// upload is *smaller than the raw input* — any other cut ships more
    /// bytes than `p = 0` while also spending device time, so it can only
    /// win in pathological landscapes. The paper's related work credits
    /// DeepWear with this reduction; on the zoo it shrinks the scan by
    /// 3-10x without changing any decision (see `tests/pruning.rs`).
    #[must_use]
    pub fn candidate_points(&self) -> Vec<usize> {
        let n = self.len();
        let input = self.transmission[0];
        (0..=n)
            .filter(|&p| p == 0 || p == n || self.transmission[p] < input)
            .collect()
    }

    /// Algorithm 1 restricted to [`candidate_points`](Self::candidate_points)
    /// — the DeepWear-pruned scan.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_up_mbps <= 0` or `k < 1`.
    #[must_use]
    pub fn decide_pruned(&self, bandwidth_up_mbps: f64, k: f64) -> Decision {
        let mut best: Option<Decision> = None;
        for p in self.candidate_points() {
            let cand = self.latency_inner(p, bandwidth_up_mbps, None, k);
            if best.as_ref().is_none_or(|b| cand.predicted <= b.predicted) {
                best = Some(cand);
            }
        }
        best.expect("candidate set always contains 0 and n")
    }

    /// The predicted latency curve `t_p` for all `p` (used by Figure 1).
    #[must_use]
    pub fn latency_curve(&self, bandwidth_up_mbps: f64, k: f64) -> Vec<Decision> {
        (0..=self.len())
            .map(|p| self.latency_at(p, bandwidth_up_mbps, k))
            .collect()
    }

    /// The transmission series `s_0..s_n` (bytes).
    #[must_use]
    pub fn transmission(&self) -> &[u64] {
        &self.transmission
    }

    /// Unscaled per-suffix edge predictions `Σ_{j>p} M_edge(L_j)` in
    /// seconds — the quantity the runtime scales by the live `k`.
    #[must_use]
    pub fn suffix_edge_secs(&self, p: usize) -> f64 {
        self.suffix_edge[p]
    }

    /// Prefix device predictions `Σ_{j<=p} f(L_j)` in seconds.
    #[must_use]
    pub fn prefix_device_secs(&self, p: usize) -> f64 {
        self.prefix_device[p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic 4-node chain where every regime is reachable:
    /// device times 10ms each, edge times 1ms each, transmissions
    /// shrinking along the chain.
    fn toy() -> PartitionSolver {
        PartitionSolver::from_times(
            &[0.010; 4],
            &[0.001; 4],
            vec![1_000_000, 500_000, 250_000, 125_000, 4_000],
            4_000,
        )
    }

    #[test]
    fn high_bandwidth_prefers_full_offloading() {
        let d = toy().decide(1000.0, 1.0);
        assert_eq!(d.p, 0);
        assert!(d.device == SimDuration::ZERO);
    }

    #[test]
    fn tiny_bandwidth_prefers_local() {
        let d = toy().decide(0.001, 1.0);
        assert_eq!(d.p, 4);
        assert_eq!(d.upload, SimDuration::ZERO);
        assert_eq!(d.server, SimDuration::ZERO);
    }

    #[test]
    fn moderate_bandwidth_partitions_in_the_middle() {
        // 8 Mbps = 1 MB/s: even s_3 costs 0.125 s, so local (0.04 s) wins.
        let d = toy().decide(8.0, 1.0);
        assert_eq!(d.p, 4);
        // At 160 Mbps (20 MB/s): t_2 = 0.02 + 0.0125 + 0.002 = 0.0345 is
        // the minimum -> a genuine mid-chain partition.
        let d = toy().decide(160.0, 1.0);
        assert_eq!(d.p, 2);
    }

    #[test]
    fn rising_k_pushes_partition_later() {
        let s = toy();
        let p_idle = s.decide(160.0, 1.0).p;
        let p_busy = s.decide(160.0, 20.0).p;
        assert_eq!(p_idle, 2);
        assert!(p_busy > p_idle);
        assert_eq!(p_busy, 4, "k=20 makes the server useless");
    }

    #[test]
    fn k_scales_only_the_server_term() {
        let s = toy();
        let a = s.latency_at(2, 8.0, 1.0);
        let b = s.latency_at(2, 8.0, 3.0);
        assert_eq!(a.device, b.device);
        assert_eq!(a.upload, b.upload);
        assert!((b.server.as_secs_f64() - 3.0 * a.server.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn local_inference_has_no_network_or_server_terms() {
        let s = toy();
        let d = s.latency_at(4, 0.001, 5.0);
        assert_eq!(d.upload, SimDuration::ZERO);
        assert_eq!(d.server, SimDuration::ZERO);
        assert_eq!(d.download, SimDuration::ZERO);
        assert!((d.predicted.as_secs_f64() - 0.04).abs() < 1e-9);
    }

    #[test]
    fn download_term_optional() {
        let s = toy();
        let without = s.latency_at(0, 8.0, 1.0);
        let with = s.latency_inner(0, 8.0, Some(8.0), 1.0);
        assert!(with.predicted > without.predicted);
        assert!((with.download.as_secs_f64() - 4e3 / 1e6).abs() < 1e-9);
        // decide_with_download agrees with manual evaluation.
        let d = s.decide_with_download(8.0, 8.0, 1.0);
        let best = (0..=4)
            .map(|p| s.latency_inner(p, 8.0, Some(8.0), 1.0))
            .min_by(|a, b| a.predicted.cmp(&b.predicted))
            .unwrap();
        assert_eq!(d.predicted, best.predicted);
    }

    #[test]
    fn ties_resolve_to_larger_p() {
        // Two points with identical cost: zero-size transmissions and
        // symmetric times.
        let s = PartitionSolver::from_times(&[0.01, 0.01], &[0.01, 0.01], vec![0, 0, 0], 0);
        // t_0 = 0.02, t_1 = 0.02, t_2 = 0.02 -> p = 2.
        assert_eq!(s.decide(8.0, 1.0).p, 2);
    }

    #[test]
    fn decision_matches_exhaustive_search() {
        let s = toy();
        for bw in [0.5, 1.0, 8.0, 64.0, 512.0] {
            for k in [1.0, 2.0, 8.0] {
                let fast = s.decide(bw, k);
                let slow = (0..=s.len())
                    .map(|p| s.latency_at(p, bw, k))
                    .min_by(|a, b| {
                        a.predicted.cmp(&b.predicted).then(b.p.cmp(&a.p)) // larger p wins ties
                    })
                    .unwrap();
                assert_eq!(fast.p, slow.p, "bw={bw} k={k}");
                assert_eq!(fast.predicted, slow.predicted);
            }
        }
    }

    #[test]
    fn pruned_candidates_keep_endpoints_and_small_uploads() {
        let s = toy();
        // s_0 = 1 MB; every later point uploads less -> all candidates.
        assert_eq!(s.candidate_points(), vec![0, 1, 2, 3, 4]);
        let grow = PartitionSolver::from_times(&[0.01; 3], &[0.001; 3], vec![100, 500, 50, 0], 0);
        // s_1 = 500 > input 100 is pruned; endpoints and s_2 survive.
        assert_eq!(grow.candidate_points(), vec![0, 2, 3]);
    }

    #[test]
    fn pruned_decision_matches_full_scan_here() {
        let s = toy();
        for bw in [0.5, 8.0, 160.0] {
            for k in [1.0, 8.0] {
                assert_eq!(s.decide(bw, k).p, s.decide_pruned(bw, k).p, "bw={bw} k={k}");
            }
        }
    }

    #[test]
    fn latency_curve_has_n_plus_one_points() {
        let s = toy();
        let curve = s.latency_curve(8.0, 1.0);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[4].upload, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_below_one_panics() {
        let _ = toy().decide(8.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = toy().decide(0.0, 1.0);
    }
}

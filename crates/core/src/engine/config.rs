//! Engine configuration and its validation.

use lp_sim::SimDuration;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Tunables of the per-request offload engine (defaults follow §V-A).
///
/// This is the same shape the co-simulated system historically called
/// `SystemConfig`; that name remains available as an alias.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Runtime-profiler period (bandwidth probe + `k` fetch), default 5 s.
    pub profiler_period: SimDuration,
    /// Sliding-window length of the bandwidth estimator.
    pub bandwidth_window: usize,
    /// Monitoring period of the server-side load tracker.
    pub tracker_period: SimDuration,
    /// Whether to add the result-download leg to measured latency
    /// (§IV ignores it; kept for ablations).
    pub model_download: bool,
    /// RNG seed for measurement noise.
    pub seed: u64,
    /// Wall-clock deadline for one wire exchange (send + matching reply).
    /// Only the threaded runtime blocks on real channels; the co-simulated
    /// backends never wait.
    pub io_timeout: Duration,
    /// How many times a failed probe / load query / offload exchange is
    /// retried before the engine degrades (0 = a single attempt).
    pub max_retries: u32,
    /// Base of the exponential retry backoff: attempt `i` sleeps
    /// `retry_backoff * 2^(i-1)`. Zero disables sleeping (tests).
    pub retry_backoff: Duration,
    /// Hard cap on the *cumulative* backoff sleeping one request may do
    /// across all of its retries (profiler probes and suffix exchanges
    /// combined). When the next sleep would exceed the remaining budget
    /// the retry is abandoned and the engine degrades immediately, so a
    /// sustained outage cannot turn `max_retries` into a retry storm.
    /// Only sleeps count against the budget — `io_timeout` waits do not.
    pub retry_budget: Duration,
    /// Jitter each backoff sleep to `[0.5, 1.5)x` its base using a
    /// deterministic seeded generator (decorrelates clients hammering a
    /// recovering server). The jitter stream is separate from the
    /// measurement RNG, so enabling it never changes logical records.
    pub retry_jitter: bool,
    /// After the offload path exhausts its retries, decisions are biased
    /// local for this long (logical time) before the wire is probed again.
    pub fault_cooldown: SimDuration,
    /// Consecutive wire failures (rejections, exhausted retries) before
    /// the client's circuit breaker opens. `0` disables the breaker.
    pub breaker_failure_threshold: u32,
    /// How long an open breaker suppresses all wire traffic before
    /// half-open probing starts (logical time).
    pub breaker_open_period: SimDuration,
    /// Memoize the Algorithm-1 decision on (quantized bandwidth,
    /// quantized `k`) so back-to-back requests between profiler refreshes
    /// skip the O(n) scan. Identical inputs give identical decisions, so
    /// this never changes behaviour; it exists as a switch for the serving
    /// benchmark's pre-memo baseline.
    pub decision_memo: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            profiler_period: SimDuration::from_secs(5),
            bandwidth_window: 8,
            tracker_period: SimDuration::from_secs(5),
            model_download: false,
            seed: 7,
            io_timeout: Duration::from_millis(500),
            max_retries: 2,
            retry_backoff: Duration::from_millis(5),
            retry_budget: Duration::from_millis(250),
            retry_jitter: true,
            fault_cooldown: SimDuration::from_secs(10),
            breaker_failure_threshold: 3,
            breaker_open_period: SimDuration::from_secs(5),
            decision_memo: true,
        }
    }
}

impl EngineConfig {
    /// Checks the configuration for values the runtime cannot work with.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bandwidth_window == 0 {
            return Err(ConfigError::ZeroBandwidthWindow);
        }
        if self.profiler_period == SimDuration::ZERO {
            return Err(ConfigError::ZeroProfilerPeriod);
        }
        if self.tracker_period == SimDuration::ZERO {
            return Err(ConfigError::ZeroTrackerPeriod);
        }
        if self.io_timeout == Duration::ZERO {
            return Err(ConfigError::ZeroIoTimeout);
        }
        if self.fault_cooldown == SimDuration::ZERO {
            return Err(ConfigError::ZeroFaultCooldown);
        }
        if self.breaker_failure_threshold > 0 && self.breaker_open_period == SimDuration::ZERO {
            return Err(ConfigError::ZeroBreakerOpenPeriod);
        }
        Ok(())
    }

    /// The backoff before retry attempt `attempt` (1-based): exponential
    /// doubling on the configured base, capped at 16x to bound the total
    /// stall a dead server can impose on one request.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(4);
        self.retry_backoff.saturating_mul(factor)
    }
}

/// One step of the splitmix64 sequence — the engine's side stream for
/// backoff jitter. Kept apart from the measurement RNG so jitter draws
/// never perturb device/bandwidth sampling (and therefore never change
/// logical records).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Jitters a backoff `base` to `[0.5, 1.5)x` using one [`splitmix64`]
/// draw. Deterministic: the same state sequence yields the same sleeps,
/// which keeps retry counts (and thus records) replayable even when the
/// retry budget truncates a retry loop.
#[must_use]
pub fn seeded_jitter(base: Duration, state: &mut u64) -> Duration {
    if base.is_zero() {
        return base;
    }
    // 53 uniform bits -> u in [0, 1); scale to [0.5, 1.5).
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(0.5 + u)
}

/// A configuration value the runtime cannot work with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The bandwidth estimator needs a non-empty sliding window.
    ZeroBandwidthWindow,
    /// The runtime profiler needs a positive period.
    ZeroProfilerPeriod,
    /// The server-side load tracker needs a positive monitoring period.
    ZeroTrackerPeriod,
    /// A multi-client run needs at least one client.
    ZeroClients,
    /// Links need a positive bandwidth.
    NonPositiveBandwidth,
    /// An experiment needs a positive duration.
    ZeroDuration,
    /// Wire exchanges need a positive deadline.
    ZeroIoTimeout,
    /// The post-fault cooldown needs a positive length (otherwise a dead
    /// server is re-probed on every request, stalling each one).
    ZeroFaultCooldown,
    /// An enabled circuit breaker needs a positive open period (otherwise
    /// opening the breaker would be a no-op and every request would still
    /// hit the overloaded server).
    ZeroBreakerOpenPeriod,
    /// A cluster needs at least one server endpoint.
    NoServers,
    /// A named policy was not found in the policy registry.
    UnknownPolicy,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBandwidthWindow => {
                write!(f, "bandwidth window must hold at least one sample")
            }
            ConfigError::ZeroProfilerPeriod => write!(f, "profiler period must be positive"),
            ConfigError::ZeroTrackerPeriod => write!(f, "tracker period must be positive"),
            ConfigError::ZeroClients => write!(f, "need at least one client"),
            ConfigError::NonPositiveBandwidth => write!(f, "bandwidth must be positive"),
            ConfigError::ZeroDuration => write!(f, "duration must be positive"),
            ConfigError::ZeroIoTimeout => write!(f, "wire I/O timeout must be positive"),
            ConfigError::ZeroFaultCooldown => write!(f, "fault cooldown must be positive"),
            ConfigError::ZeroBreakerOpenPeriod => {
                write!(f, "breaker open period must be positive when enabled")
            }
            ConfigError::NoServers => write!(f, "a cluster needs at least one server"),
            ConfigError::UnknownPolicy => {
                write!(f, "policy name not found in the policy registry")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(EngineConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_window_is_rejected() {
        let cfg = EngineConfig {
            bandwidth_window: 0,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBandwidthWindow));
    }

    #[test]
    fn zero_periods_are_rejected() {
        let cfg = EngineConfig {
            profiler_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroProfilerPeriod));
        let cfg = EngineConfig {
            tracker_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroTrackerPeriod));
    }

    #[test]
    fn zero_fault_knobs_are_rejected() {
        let cfg = EngineConfig {
            io_timeout: Duration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroIoTimeout));
        let cfg = EngineConfig {
            fault_cooldown: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroFaultCooldown));
        // Zero backoff and zero retries are legitimate (single attempt,
        // no sleeping) — deterministic tests rely on them.
        let cfg = EngineConfig {
            max_retries: 0,
            retry_backoff: Duration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = EngineConfig {
            retry_backoff: Duration::from_millis(10),
            ..EngineConfig::default()
        };
        assert_eq!(cfg.backoff_for(1), Duration::from_millis(10));
        assert_eq!(cfg.backoff_for(2), Duration::from_millis(20));
        assert_eq!(cfg.backoff_for(3), Duration::from_millis(40));
        // Capped at 16x so a dead server cannot stall a request unboundedly.
        assert_eq!(cfg.backoff_for(40), Duration::from_millis(160));
    }

    #[test]
    fn seeded_jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(10);
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..64 {
            let ja = seeded_jitter(base, &mut a);
            let jb = seeded_jitter(base, &mut b);
            // Same seed, same draw index -> identical sleep.
            assert_eq!(ja, jb);
            // Always within [0.5, 1.5)x the base.
            assert!(ja >= base / 2 && ja < base + base / 2, "{ja:?}");
        }
        // Distinct seeds decorrelate (at least one draw differs).
        let (mut c, mut d) = (43u64, 44u64);
        let diverges = (0..64).any(|_| seeded_jitter(base, &mut c) != seeded_jitter(base, &mut d));
        assert!(diverges);
        // Zero base stays zero regardless of the stream.
        assert_eq!(seeded_jitter(Duration::ZERO, &mut a), Duration::ZERO);
    }

    #[test]
    fn breaker_knobs_validate() {
        // Disabled breaker tolerates a zero open period.
        let cfg = EngineConfig {
            breaker_failure_threshold: 0,
            breaker_open_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
        // Enabled breaker requires a positive open period.
        let cfg = EngineConfig {
            breaker_failure_threshold: 3,
            breaker_open_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBreakerOpenPeriod));
    }

    #[test]
    fn errors_display_readably() {
        let msg = ConfigError::ZeroClients.to_string();
        assert!(msg.contains("at least one client"), "{msg}");
        assert!(ConfigError::ZeroIoTimeout.to_string().contains("timeout"));
        assert!(ConfigError::ZeroFaultCooldown
            .to_string()
            .contains("cooldown"));
    }
}

//! Engine configuration and its validation.

use lp_sim::SimDuration;
use std::error::Error;
use std::fmt;

/// Tunables of the per-request offload engine (defaults follow §V-A).
///
/// This is the same shape the co-simulated system historically called
/// `SystemConfig`; that name remains available as an alias.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Runtime-profiler period (bandwidth probe + `k` fetch), default 5 s.
    pub profiler_period: SimDuration,
    /// Sliding-window length of the bandwidth estimator.
    pub bandwidth_window: usize,
    /// Monitoring period of the server-side load tracker.
    pub tracker_period: SimDuration,
    /// Whether to add the result-download leg to measured latency
    /// (§IV ignores it; kept for ablations).
    pub model_download: bool,
    /// RNG seed for measurement noise.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            profiler_period: SimDuration::from_secs(5),
            bandwidth_window: 8,
            tracker_period: SimDuration::from_secs(5),
            model_download: false,
            seed: 7,
        }
    }
}

impl EngineConfig {
    /// Checks the configuration for values the runtime cannot work with.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bandwidth_window == 0 {
            return Err(ConfigError::ZeroBandwidthWindow);
        }
        if self.profiler_period == SimDuration::ZERO {
            return Err(ConfigError::ZeroProfilerPeriod);
        }
        if self.tracker_period == SimDuration::ZERO {
            return Err(ConfigError::ZeroTrackerPeriod);
        }
        Ok(())
    }
}

/// A configuration value the runtime cannot work with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The bandwidth estimator needs a non-empty sliding window.
    ZeroBandwidthWindow,
    /// The runtime profiler needs a positive period.
    ZeroProfilerPeriod,
    /// The server-side load tracker needs a positive monitoring period.
    ZeroTrackerPeriod,
    /// A multi-client run needs at least one client.
    ZeroClients,
    /// Links need a positive bandwidth.
    NonPositiveBandwidth,
    /// An experiment needs a positive duration.
    ZeroDuration,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBandwidthWindow => {
                write!(f, "bandwidth window must hold at least one sample")
            }
            ConfigError::ZeroProfilerPeriod => write!(f, "profiler period must be positive"),
            ConfigError::ZeroTrackerPeriod => write!(f, "tracker period must be positive"),
            ConfigError::ZeroClients => write!(f, "need at least one client"),
            ConfigError::NonPositiveBandwidth => write!(f, "bandwidth must be positive"),
            ConfigError::ZeroDuration => write!(f, "duration must be positive"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(EngineConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_window_is_rejected() {
        let cfg = EngineConfig {
            bandwidth_window: 0,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBandwidthWindow));
    }

    #[test]
    fn zero_periods_are_rejected() {
        let cfg = EngineConfig {
            profiler_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroProfilerPeriod));
        let cfg = EngineConfig {
            tracker_period: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroTrackerPeriod));
    }

    #[test]
    fn errors_display_readably() {
        let msg = ConfigError::ZeroClients.to_string();
        assert!(msg.contains("at least one client"), "{msg}");
    }
}

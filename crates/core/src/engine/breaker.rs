//! Client-side circuit breaker over the offload path.
//!
//! Rejections, timeouts and fallbacks count as failures; once
//! `failure_threshold` consecutive failures accumulate the breaker opens
//! and Algorithm 1 is short-circuited to `p = n` (pure local) with zero
//! wire traffic. After `open_period` the breaker becomes half-open and
//! admits one probe per profiler period; a successful probe closes it, a
//! failed one re-opens it. The state machine never skips half-open on the
//! way back to closed, so a recovering server sees a single probe — not a
//! thundering herd.

use lp_sim::{SimDuration, SimTime};

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: offloading allowed.
    Closed,
    /// Tripped: all wire traffic suppressed until the open period elapses.
    Open,
    /// Probing: one wire request per probe period is allowed through.
    HalfOpen,
}

/// What the breaker allows for the current request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireGate {
    /// Closed breaker: the wire is fully available.
    Pass,
    /// Half-open breaker: this request is the probe; its outcome decides
    /// whether the breaker closes or re-opens.
    Probe,
    /// Open (or half-open between probes): no wire traffic at all.
    Block,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Closed,
    Open { until: SimTime },
    HalfOpen,
}

/// The closed → open → half-open breaker driven by the engine.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: State,
    /// Consecutive failures while closed; `threshold` of them trip it.
    failures: u32,
    /// `0` disables the breaker entirely (gate is always [`WireGate::Pass`]).
    threshold: u32,
    open_period: SimDuration,
    /// Half-open probe pacing: one probe per this period.
    probe_period: SimDuration,
    last_probe: Option<SimTime>,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker. `threshold` consecutive failures open it for
    /// `open_period`; half-open then admits one probe per `probe_period`.
    /// `threshold == 0` disables the breaker.
    #[must_use]
    pub fn new(threshold: u32, open_period: SimDuration, probe_period: SimDuration) -> Self {
        CircuitBreaker {
            state: State::Closed,
            failures: 0,
            threshold,
            open_period,
            probe_period,
            last_probe: None,
            transitions: 0,
        }
    }

    /// What the wire allows for a request starting at `now`. Advances
    /// open → half-open when the open period has elapsed, and consumes the
    /// half-open probe slot when it grants [`WireGate::Probe`].
    pub fn gate(&mut self, now: SimTime) -> WireGate {
        if self.threshold == 0 {
            return WireGate::Pass;
        }
        if let State::Open { until } = self.state {
            if now >= until {
                self.transition(State::HalfOpen);
                self.last_probe = None;
            }
        }
        match self.state {
            State::Closed => WireGate::Pass,
            State::Open { .. } => WireGate::Block,
            State::HalfOpen => {
                let due = self
                    .last_probe
                    .is_none_or(|last| now.since(last) >= self.probe_period);
                if due {
                    self.last_probe = Some(now);
                    WireGate::Probe
                } else {
                    WireGate::Block
                }
            }
        }
    }

    /// What [`CircuitBreaker::gate`] *would* return for a request starting
    /// at `now`, without advancing the state machine or consuming the
    /// half-open probe slot. Cluster server selection uses this to rank
    /// endpoints; only the endpoint actually routed to pays the `gate`
    /// call, so an unselected half-open server keeps its probe slot.
    #[must_use]
    pub fn peek(&self, now: SimTime) -> WireGate {
        if self.threshold == 0 {
            return WireGate::Pass;
        }
        match self.state {
            State::Closed => WireGate::Pass,
            // `gate` would flip to half-open with a cleared probe slot, so
            // the first request after the open period is always the probe.
            State::Open { until } if now >= until => WireGate::Probe,
            State::Open { .. } => WireGate::Block,
            State::HalfOpen => {
                let due = self
                    .last_probe
                    .is_none_or(|last| now.since(last) >= self.probe_period);
                if due {
                    WireGate::Probe
                } else {
                    WireGate::Block
                }
            }
        }
    }

    /// Records a successful wire exchange. Closes a half-open breaker and
    /// clears the consecutive-failure count.
    pub fn record_success(&mut self, _now: SimTime) {
        self.failures = 0;
        if self.state == State::HalfOpen {
            self.transition(State::Closed);
        }
    }

    /// Records a failed wire exchange (rejection, exhausted retries).
    /// Re-opens a half-open breaker immediately; trips a closed one after
    /// `threshold` consecutive failures.
    pub fn record_failure(&mut self, now: SimTime) {
        if self.threshold == 0 {
            return;
        }
        match self.state {
            State::HalfOpen => {
                self.failures = 0;
                self.transition(State::Open {
                    until: now + self.open_period,
                });
            }
            State::Closed => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.failures = 0;
                    self.transition(State::Open {
                        until: now + self.open_period,
                    });
                }
            }
            State::Open { .. } => {}
        }
    }

    /// The current state (as last advanced by [`CircuitBreaker::gate`]).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Total state transitions so far (closed→open, open→half-open, …).
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn transition(&mut self, next: State) {
        if self.state != next {
            self.state = next;
            self.transitions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            3,
            SimDuration::from_millis(500),
            SimDuration::from_millis(100),
        )
    }

    #[test]
    fn stays_closed_below_threshold() {
        let mut b = breaker();
        b.record_failure(at(0));
        b.record_failure(at(1));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gate(at(2)), WireGate::Pass);
        // A success resets the consecutive count.
        b.record_success(at(3));
        b.record_failure(at(4));
        b.record_failure(at(5));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_open_after_threshold_and_blocks() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.gate(at(10)), WireGate::Block);
        assert_eq!(b.gate(at(499)), WireGate::Block);
    }

    #[test]
    fn open_becomes_half_open_then_probes_once_per_period() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i));
        }
        // Open period (500ms from the tripping failure at t=2) elapses.
        assert_eq!(b.gate(at(502)), WireGate::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Within the probe period: blocked.
        assert_eq!(b.gate(at(550)), WireGate::Block);
        // Next probe period: probe again.
        assert_eq!(b.gate(at(602)), WireGate::Probe);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i));
        }
        assert_eq!(b.gate(at(600)), WireGate::Probe);
        b.record_failure(at(600));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.gate(at(700)), WireGate::Block);
        assert_eq!(b.gate(at(1101)), WireGate::Probe);
        b.record_success(at(1101));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gate(at(1102)), WireGate::Pass);
    }

    #[test]
    fn recovery_never_skips_half_open() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i));
        }
        // A success while open does not close the breaker.
        b.record_success(at(100));
        assert_eq!(b.state(), BreakerState::Open);
        // Only the half-open probe path closes it.
        assert_eq!(b.gate(at(503)), WireGate::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(at(503));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut b = CircuitBreaker::new(0, SimDuration::from_secs(1), SimDuration::from_secs(1));
        for i in 0..100 {
            b.record_failure(at(i));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gate(at(200)), WireGate::Pass);
        assert_eq!(b.transitions(), 0);
    }

    #[test]
    fn peek_predicts_gate_without_consuming_the_probe_slot() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i));
        }
        // While open: peek agrees with gate and mutates nothing.
        assert_eq!(b.peek(at(100)), WireGate::Block);
        assert_eq!(b.state(), BreakerState::Open);
        // Past the open period: peek predicts the probe grant, repeatedly —
        // the slot is only consumed by the real gate call.
        assert_eq!(b.peek(at(502)), WireGate::Probe);
        assert_eq!(b.peek(at(502)), WireGate::Probe);
        assert_eq!(b.gate(at(502)), WireGate::Probe);
        // Probe slot now consumed: both agree on Block until the next period.
        assert_eq!(b.peek(at(550)), WireGate::Block);
        assert_eq!(b.gate(at(550)), WireGate::Block);
        assert_eq!(b.peek(at(602)), WireGate::Probe);
        // Closed and disabled breakers always pass.
        b.record_success(at(602));
        assert_eq!(b.peek(at(603)), WireGate::Pass);
        let disabled = CircuitBreaker::new(0, SimDuration::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(disabled.peek(at(0)), WireGate::Pass);
    }

    #[test]
    fn transitions_are_counted() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i));
        }
        assert_eq!(b.transitions(), 1); // closed -> open
        b.gate(at(502)); // open -> half-open
        assert_eq!(b.transitions(), 2);
        b.record_success(at(502)); // half-open -> closed
        assert_eq!(b.transitions(), 3);
    }
}

//! The shared per-request offload pipeline.
//!
//! Every driver in this crate — the co-simulated [`OffloadingSystem`]
//! (`system`), the threaded wire runtime (`threaded`) and the shared-GPU
//! multi-client run (`multi_client`) — executes the same LoADPart loop per
//! request:
//!
//! 1. run the periodic runtime-profiler action if due ([`RuntimeProfile`]:
//!    bandwidth probe + `k` fetch, §IV);
//! 2. pick the partition point with the installed
//!    [`PartitionPolicy`] (Algorithm 1 for LoADPart);
//! 3. fetch the partitioned graph from the device-side partition cache
//!    (§III-A);
//! 4. execute `L_1..L_p` on the device, upload the crossing tensors, hand
//!    the suffix to the server;
//! 5. when the suffix completes, report the observed server time to the
//!    load-factor tracker (§III-C).
//!
//! [`OffloadEngine`] owns that loop once. What differs per driver is *how*
//! each step executes, expressed as three traits the engine is generic
//! over:
//!
//! * [`DeviceExecutor`] — how `L_1..L_p` runs (sampled latency model vs
//!   logical no-op);
//! * [`Transport`] — how probes and tensors move (simulated [`lp_net::Link`]
//!   vs protocol frames over channels);
//! * [`ServerBackend`] — how the suffix executes and where `k` comes from
//!   (queueing [`lp_hardware::GpuSim`], shared or exclusive, vs a remote
//!   server thread).
//!
//! Backends that queue (a shared GPU) return [`SuffixOutcome::Pending`];
//! drivers that interleave many clients keep the [`PendingRequest`] and
//! call [`OffloadEngine::finish`] when the completion arrives. Drivers
//! that block per request just call [`OffloadEngine::run`].
//!
//! The decision step itself is pluggable: [`OffloadEngine::new`] takes
//! the classic [`Policy`] enum spec (wrapped in a
//! [`MemoPolicy`] when
//! [`EngineConfig::decision_memo`] is set), while
//! [`OffloadEngine::with_policy`] installs any [`PartitionPolicy`]
//! trait object — including stateful online learners, which the engine
//! feeds completed records through [`PartitionPolicy::observe`] (guarded:
//! fallback-local and admission-shed records never reach the learner).
//!
//! [`OffloadingSystem`]: crate::system::OffloadingSystem
//! [`Policy`]: crate::baselines::Policy

pub mod backends;
pub mod breaker;
mod config;
mod profile;
mod record;

pub use breaker::{BreakerState, CircuitBreaker, WireGate};
pub use config::{ConfigError, EngineConfig};
pub use profile::RuntimeProfile;
pub use record::InferenceRecord;

use crate::algorithm::PartitionSolver;
use crate::baselines::Policy;
use crate::cache::PartitionCache;
use crate::policy::{MemoPolicy, PartitionPolicy, PolicyContext};
use crate::protocol::ProtocolError;
use crate::telemetry::{EngineMetrics, SpanEvent, SpanKind, Telemetry};
use lp_graph::ComputationGraph;
use lp_hardware::TaskId;
use lp_profiler::PredictionModels;
use lp_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// How a driver executes device-side layers.
pub trait DeviceExecutor {
    /// Executes layers `L_{from+1}..L_to` and returns the time it took.
    /// The engine uses `0..p` for the normal prefix and `p..n` when the
    /// offload path fails mid-request and the device has to finish the
    /// inference itself.
    fn execute_range(
        &mut self,
        graph: &ComputationGraph,
        from: usize,
        to: usize,
        rng: &mut StdRng,
    ) -> SimDuration;

    /// Executes the prefix `L_1..L_p` and returns the time it took.
    fn execute_prefix(
        &mut self,
        graph: &ComputationGraph,
        p: usize,
        rng: &mut StdRng,
    ) -> SimDuration {
        self.execute_range(graph, 0, p, rng)
    }
}

/// One suffix execution handed to a [`ServerBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuffixRequest {
    /// Engine-assigned request id.
    pub request_id: u64,
    /// Partition point: the server runs `L_{p+1}..L_n`.
    pub p: usize,
    /// Bytes of crossing tensors shipped with the request.
    pub upload_bytes: u64,
    /// When the upload finished — the suffix cannot start earlier, and
    /// server time is measured from here.
    pub arrive: SimTime,
}

/// What a [`ServerBackend`] did with a suffix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SuffixOutcome {
    /// The suffix ran to completion (blocking backends).
    Done {
        /// When the suffix finished on the server.
        completion: SimTime,
    },
    /// The suffix is queued; the driver must observe the completion and
    /// call [`OffloadEngine::finish`] (shared-GPU backends).
    Pending {
        /// Handle to poll the simulator with.
        task: TaskId,
    },
    /// The server's admission control shed the request — its pending-work
    /// budget is exhausted. The device runs the suffix itself; no retry
    /// (the server told us it is overloaded, hammering it again is
    /// counter-productive).
    Rejected {
        /// Predicted time until the server's backlog drains.
        retry_after: SimDuration,
        /// The server's load factor, piggybacked so the client's profile
        /// is load-aware immediately.
        k: f64,
    },
}

/// How a driver executes the server side: suffix execution and the load
/// feedback loop.
pub trait ServerBackend {
    /// Advances server-side clocks to `now` (called once per request,
    /// before anything else).
    fn advance(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Server-side housekeeping that runs every request regardless of the
    /// profiler cadence — the GPU-utilization watchdog in the
    /// co-simulation.
    fn monitor(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Answers the device's periodic "what is `k` now?" query.
    ///
    /// # Errors
    ///
    /// Wire backends propagate [`ProtocolError`] on malformed replies.
    fn query_k(&mut self, now: SimTime) -> Result<f64, ProtocolError>;

    /// Executes (or enqueues) the suffix `L_{p+1}..L_n`.
    ///
    /// # Errors
    ///
    /// Wire backends propagate [`ProtocolError`] on malformed responses.
    fn execute_suffix(
        &mut self,
        graph: &ComputationGraph,
        req: &SuffixRequest,
        rng: &mut StdRng,
    ) -> Result<SuffixOutcome, ProtocolError>;

    /// Blocks until a [`SuffixOutcome::Pending`] task completes and
    /// returns the completion time. Only called by [`OffloadEngine::run`];
    /// backends that never defer keep the default.
    fn wait(&mut self, task: TaskId) -> SimTime {
        let _ = task;
        unreachable!("backend never defers suffix execution")
    }

    /// Feeds one observed suffix execution to the server's load-factor
    /// tracker. Backends whose server observes executions itself (the
    /// threaded server thread) leave this a no-op.
    fn complete(&mut self, completion: SimTime, observed: SimDuration, predicted: SimDuration);
}

/// How bytes move between device and server.
pub trait Transport {
    /// Sends one bandwidth probe at `now`, feeding `profiler`.
    ///
    /// # Errors
    ///
    /// Wire transports propagate [`ProtocolError`] on a malformed ack.
    fn probe(
        &mut self,
        profiler: &mut lp_net::ProbeProfiler,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Result<(), ProtocolError>;

    /// Ships `bytes` of crossing tensors starting at `start`; returns the
    /// arrival time at the server. Real uploads also feed the estimator
    /// passively (§IV).
    ///
    /// # Errors
    ///
    /// Wire transports propagate [`ProtocolError`].
    fn upload(
        &mut self,
        profiler: &mut lp_net::ProbeProfiler,
        bytes: u64,
        start: SimTime,
        rng: &mut StdRng,
    ) -> Result<SimTime, ProtocolError>;

    /// Ships the result back starting at `start`; returns when it lands on
    /// the device.
    fn download(&mut self, bytes: u64, start: SimTime, rng: &mut StdRng) -> SimTime;
}

/// An offload request whose suffix is still queued on the server.
#[derive(Debug)]
pub struct PendingRequest {
    /// Handle the driver polls the simulator with.
    pub task: TaskId,
    arrive: SimTime,
    record: InferenceRecord,
    /// Whether the installed policy made this decision (as opposed to
    /// the degraded local path) — gates the feedback hook at settle time.
    policy_decided: bool,
}

impl PendingRequest {
    /// The partially filled record (server/download/total not yet final).
    #[must_use]
    pub fn record(&self) -> &InferenceRecord {
        &self.record
    }
}

/// Result of [`OffloadEngine::start`].
#[derive(Debug)]
pub enum Outcome {
    /// The request ran to completion.
    Complete(InferenceRecord),
    /// The suffix is queued on a shared backend.
    Deferred(PendingRequest),
}

/// The per-client LoADPart runtime: solver + policy + profile + partition
/// cache, driving one request at a time over whatever device/transport/
/// server backends the driver supplies.
#[derive(Debug)]
pub struct OffloadEngine {
    graph: Arc<ComputationGraph>,
    solver: PartitionSolver,
    policy: Box<dyn PartitionPolicy>,
    config: EngineConfig,
    profile: RuntimeProfile,
    device_cache: PartitionCache,
    rng: StdRng,
    next_id: u64,
    client: usize,
    telemetry: Telemetry,
    metrics: Option<EngineMetrics>,
    breaker: CircuitBreaker,
    /// Transition count already surfaced through telemetry, so each
    /// finish span reports only the delta since the previous request.
    breaker_reported: u64,
}

impl OffloadEngine {
    /// Assembles an engine for one DNN on one client, from a [`Policy`]
    /// enum spec. When [`EngineConfig::decision_memo`] is set the policy
    /// is wrapped in a [`MemoPolicy`], so back-to-back requests with an
    /// unchanged quantized `(bandwidth, k)` skip the decision scan — safe
    /// because every enum variant is a pure function of that key.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations with [`ConfigError`].
    pub fn new(
        graph: impl Into<Arc<ComputationGraph>>,
        policy: Policy,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
        client: usize,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        let built = if config.decision_memo {
            Box::new(MemoPolicy::new(policy.build()))
        } else {
            policy.build()
        };
        Self::with_policy(graph, built, user_models, edge_models, client, config)
    }

    /// Assembles an engine around an externally supplied
    /// [`PartitionPolicy`] — the entry point for stateful policies such as
    /// the online-learning bandit. No memo wrapper is applied here
    /// ([`EngineConfig::decision_memo`] only affects [`OffloadEngine::new`]):
    /// a learning policy's decision may change between identical
    /// `(bandwidth, k)` keys, so memoizing it would freeze learning. Wrap
    /// in [`MemoPolicy`] yourself if the policy is pure.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations with [`ConfigError`].
    pub fn with_policy(
        graph: impl Into<Arc<ComputationGraph>>,
        policy: Box<dyn PartitionPolicy>,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
        client: usize,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let graph: Arc<ComputationGraph> = graph.into();
        let solver = PartitionSolver::new(&graph, user_models, edge_models);
        let profile = RuntimeProfile::new(config.bandwidth_window, config.profiler_period);
        let rng = StdRng::seed_from_u64(config.seed);
        // Half-open probes are paced to the runtime profiler: one wire
        // attempt per profiler period while recovering.
        let breaker = CircuitBreaker::new(
            config.breaker_failure_threshold,
            config.breaker_open_period,
            config.profiler_period,
        );
        Ok(Self {
            graph,
            solver,
            policy,
            config,
            profile,
            device_cache: PartitionCache::new(),
            rng,
            next_id: 0,
            client,
            telemetry: Telemetry::disabled(),
            metrics: None,
            breaker,
            breaker_reported: 0,
        })
    }

    /// How many requests were answered from the decision memo instead of
    /// re-running the decision scan (0 unless the installed policy carries
    /// a [`MemoPolicy`] layer).
    #[must_use]
    pub fn decision_memo_hits(&self) -> u64 {
        self.policy.memo_hits()
    }

    /// The installed decision policy (for introspecting learner state in
    /// drivers and tests).
    #[must_use]
    pub fn policy(&self) -> &dyn PartitionPolicy {
        self.policy.as_ref()
    }

    /// Runs the policy feedback hook for a settled record. Guarded: the
    /// hook only fires when the installed policy actually made the
    /// decision (not the degraded local path) and the record is a real
    /// end-to-end measurement — fallback-local and admission-shed records
    /// carry synthetic local-completion timings that would poison an
    /// online learner's wire-timing estimates.
    fn feedback(&mut self, policy_decided: bool, record: &InferenceRecord) {
        if policy_decided && !record.fallback_local && !record.rejected {
            self.policy.observe(record);
        }
    }

    /// Installs an observability handle. Instrument handles are registered
    /// here, off the per-request path; with [`Telemetry::disabled`]
    /// (the default) the request path performs no telemetry work and no
    /// allocation.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.metrics = telemetry.registry().map(EngineMetrics::register);
        self.telemetry = telemetry;
    }

    /// The installed observability handle (disabled by default).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Builds and emits one span event for `record`. The event is all
    /// scalars; when no sink is installed this is a single branch.
    fn emit_span(
        &self,
        record: &InferenceRecord,
        kind: SpanKind,
        at: SimTime,
        duration: SimDuration,
        bytes: u64,
    ) {
        if !self.telemetry.traces() {
            return;
        }
        self.telemetry.emit(SpanEvent {
            client: record.client,
            request_id: record.request_id,
            kind,
            at,
            duration,
            p: record.p,
            k: record.k_used,
            bandwidth_mbps: record.bandwidth_est_mbps,
            bytes,
            fallback_local: record.fallback_local,
        });
    }

    /// Telemetry tail shared by every way a request can settle: bumps the
    /// outcome counters, surfaces breaker activity, and emits the `Finish`
    /// span.
    fn observe_finish(&mut self, record: &InferenceRecord) {
        if let Some(m) = &self.metrics {
            if record.fallback_local {
                m.fallbacks.incr(1);
            } else if record.rejected {
                m.rejected.incr(1);
            } else if record.offloaded() {
                m.offloaded.incr(1);
            } else {
                m.local.incr(1);
            }
            if record.retries > 0 {
                m.retries.incr(u64::from(record.retries));
            }
            m.breaker_state.set(match self.breaker.state() {
                BreakerState::Closed => 0.0,
                BreakerState::HalfOpen => 1.0,
                BreakerState::Open => 2.0,
            });
        }
        let transitions = self.breaker.transitions();
        let delta = transitions - self.breaker_reported;
        if delta > 0 {
            self.breaker_reported = transitions;
            if let Some(m) = &self.metrics {
                m.breaker_transitions.incr(delta);
            }
            // The span's byte field carries the transition delta — spans
            // are all-scalar by design and this request caused exactly
            // those transitions.
            self.emit_span(
                record,
                SpanKind::Breaker,
                record.start,
                SimDuration::ZERO,
                delta,
            );
        }
        self.emit_span(
            record,
            SpanKind::Finish,
            record.start,
            record.total,
            record.uploaded_bytes,
        );
    }

    /// The client-side circuit breaker (for inspecting state in drivers
    /// and tests).
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The solver (for inspecting predictions).
    #[must_use]
    pub fn solver(&self) -> &PartitionSolver {
        &self.solver
    }

    /// The graph this engine serves.
    #[must_use]
    pub fn graph(&self) -> &ComputationGraph {
        &self.graph
    }

    /// The device-side partition cache.
    #[must_use]
    pub fn device_cache(&self) -> &PartitionCache {
        &self.device_cache
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The runtime profile (bandwidth estimate + cached `k`).
    #[must_use]
    pub fn profile(&self) -> &RuntimeProfile {
        &self.profile
    }

    /// Mutable profile access (drivers that inject bandwidth).
    #[must_use]
    pub fn profile_mut(&mut self) -> &mut RuntimeProfile {
        &mut self.profile
    }

    /// Fetches `k` from the server out of cadence and caches it — the
    /// explicit runtime-profiler action. Transient wire failures are
    /// retried up to [`EngineConfig::max_retries`] times with exponential
    /// backoff before the error surfaces.
    ///
    /// # Errors
    ///
    /// Propagates backend failures once the retry budget is exhausted (or
    /// immediately on a non-transient failure such as
    /// [`ProtocolError::Disconnected`]).
    pub fn refresh_k<S: ServerBackend + ?Sized>(
        &mut self,
        now: SimTime,
        backend: &mut S,
    ) -> Result<f64, ProtocolError> {
        let mut attempt = 0u32;
        loop {
            match backend.query_k(now) {
                Ok(k) => {
                    self.profile.set_k(k);
                    return Ok(k);
                }
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sleeps the configured exponential backoff before retry `attempt`
    /// (1-based). Wall-clock, not logical time: the wire the retries go
    /// over is real.
    fn backoff(&self, attempt: u32) {
        let wait = self.config.backoff_for(attempt);
        if wait > std::time::Duration::ZERO {
            std::thread::sleep(wait);
        }
    }

    /// Starts one inference request at `at`: profiler refresh, decision,
    /// prefix, upload, suffix hand-off. Returns a completed record, or a
    /// [`PendingRequest`] when the backend queued the suffix.
    ///
    /// Wire faults never abort the request. A refresh (probe / `k` fetch)
    /// or suffix exchange that keeps failing after
    /// [`EngineConfig::max_retries`] retries degrades the request to local
    /// execution — the device runs the remaining layers itself, the record
    /// comes back with [`InferenceRecord::fallback_local`] set, and the
    /// profile enters a [`EngineConfig::fault_cooldown`] during which
    /// decisions stay local and the wire is left alone. Once the cooldown
    /// expires, the next due refresh probes the wire again and a success
    /// restores offloading.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from the upload leg (no current
    /// transport fails there; wire payloads ride inside the offload
    /// request frame).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the backend's current simulated time.
    pub fn start<D, S, T>(
        &mut self,
        at: SimTime,
        device: &mut D,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<Outcome, ProtocolError>
    where
        D: DeviceExecutor + ?Sized,
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        backend.advance(at);
        let cooling = self.profile.in_cooldown(at);
        // The breaker gates all wire traffic. A fault cooldown already
        // keeps the wire quiet, so it does not consume the half-open
        // probe slot.
        let gate = if cooling {
            WireGate::Block
        } else {
            self.breaker.gate(at)
        };
        let blocked = gate == WireGate::Block;
        let probing = gate == WireGate::Probe;
        let mut retries = 0u32;
        // True only when the wire failed *during this request* — requests
        // that stay local because an earlier request tripped the cooldown
        // are ordinary local decisions, not fallbacks.
        let mut faulted = false;
        if !blocked {
            let mut attempt = 0u32;
            loop {
                // The half-open probe must actually touch the wire, so it
                // bypasses the profiler cadence.
                let refreshed = if probing {
                    self.profile
                        .refresh_now(at, transport, backend, &mut self.rng, &self.telemetry)
                } else {
                    self.profile
                        .refresh(at, transport, backend, &mut self.rng, &self.telemetry)
                };
                match refreshed {
                    Ok(()) => {
                        if probing {
                            // The half-open probe succeeded: close the
                            // breaker (the refreshed `k` keeps Algorithm 1
                            // load-aware, so re-entry is safe).
                            self.breaker.record_success(at);
                        }
                        break;
                    }
                    Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                        attempt += 1;
                        retries += 1;
                        self.backoff(attempt);
                    }
                    Err(_) => {
                        self.profile.enter_cooldown(at, self.config.fault_cooldown);
                        self.breaker.record_failure(at);
                        faulted = true;
                        break;
                    }
                }
            }
        }
        backend.monitor(at);
        let n = self.graph.len();
        let bandwidth = self.profile.bandwidth_mbps(at);
        let k = self.profile.k();
        // Wall-clock spent actually deciding; memo hits (detected via the
        // policy's hit counter) skip the timer observation.
        let mut decide_secs: Option<f64> = None;
        let mut memo_hit = false;
        // True only on the healthy arm, where the installed policy made
        // the call — the degraded path below bypasses it entirely.
        let mut policy_decided = false;
        let decision = match bandwidth {
            Some(bw) if !faulted && !blocked => {
                policy_decided = true;
                let hits_before = self.policy.memo_hits();
                let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
                let ctx = PolicyContext {
                    solver: &self.solver,
                    bandwidth_mbps: bw,
                    k,
                    now: at,
                };
                let d = self.policy.decide(&ctx);
                memo_hit = self.policy.memo_hits() > hits_before;
                if !memo_hit {
                    decide_secs = started.map(|s| s.elapsed().as_secs_f64());
                }
                d
            }
            // Degraded: everything runs on the device. `latency_at(n, ..)`
            // ignores the wire terms, so a placeholder bandwidth is fine
            // even when the very first refresh failed and no estimate
            // exists yet.
            _ => {
                let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
                let d = self
                    .solver
                    .latency_at(n, bandwidth.unwrap_or(1.0), k.max(1.0));
                decide_secs = started.map(|s| s.elapsed().as_secs_f64());
                d
            }
        };
        let p = decision.p;

        let (partition, cache_hit) = self
            .device_cache
            .get_or_partition(&self.graph, p)
            .expect("decision p in range");

        if let Some(m) = &self.metrics {
            m.requests.incr(1);
            if let Some(secs) = decide_secs {
                m.decision_seconds.observe(secs);
            }
            if memo_hit {
                m.decision_memo_hits.incr(1);
            }
            if cache_hit {
                m.cache_hits.incr(1);
            } else {
                m.cache_misses.incr(1);
            }
            m.k.set(k);
            m.bandwidth_mbps.set(bandwidth.unwrap_or(0.0));
            m.partition_point.set(p as f64);
        }

        let device_time = device.execute_prefix(&self.graph, p, &mut self.rng);
        if let Some(m) = &self.metrics {
            m.device_seconds.observe(device_time.as_secs_f64());
        }
        let request_id = self.next_id;
        self.next_id += 1;
        let mut record = InferenceRecord {
            request_id,
            client: self.client,
            start: at,
            p,
            k_used: k,
            bandwidth_est_mbps: bandwidth.unwrap_or(0.0),
            predicted: decision.predicted,
            device: device_time,
            upload: SimDuration::ZERO,
            uploaded_bytes: 0,
            server: SimDuration::ZERO,
            download: SimDuration::ZERO,
            total: device_time,
            cache_hit,
            fallback_local: faulted,
            rejected: false,
            retries,
        };
        self.emit_span(&record, SpanKind::Decide, at, SimDuration::ZERO, 0);
        self.emit_span(&record, SpanKind::DevicePrefix, at, device_time, 0);
        if p == n {
            // Local inference: nothing leaves the device.
            self.feedback(policy_decided, &record);
            self.observe_finish(&record);
            return Ok(Outcome::Complete(record));
        }

        let upload_bytes = partition.upload_bytes(&self.graph);
        let upload_start = at + device_time;
        let upload_end = transport.upload(
            self.profile.probe_profiler_mut(),
            upload_bytes,
            upload_start,
            &mut self.rng,
        )?;
        record.upload = upload_end.since(upload_start);
        record.uploaded_bytes = upload_bytes;
        if let Some(m) = &self.metrics {
            m.upload_seconds.observe(record.upload.as_secs_f64());
        }
        self.emit_span(
            &record,
            SpanKind::Upload,
            upload_start,
            record.upload,
            upload_bytes,
        );

        let req = SuffixRequest {
            request_id,
            p,
            upload_bytes,
            arrive: upload_end,
        };
        // How the suffix hand-off ended: accepted, shed by admission
        // control, or lost to wire faults.
        enum Disposition {
            Ran(SuffixOutcome),
            Shed { retry_after: SimDuration, k: f64 },
            Faulted,
        }
        let mut attempt = 0u32;
        let disposition = loop {
            match backend.execute_suffix(&self.graph, &req, &mut self.rng) {
                // A rejection is the server telling us it is overloaded:
                // never retried, counted toward the breaker.
                Ok(SuffixOutcome::Rejected { retry_after, k }) => {
                    break Disposition::Shed { retry_after, k };
                }
                Ok(outcome) => {
                    self.breaker.record_success(at);
                    break Disposition::Ran(outcome);
                }
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    retries += 1;
                    self.backoff(attempt);
                }
                Err(_) => {
                    self.profile.enter_cooldown(at, self.config.fault_cooldown);
                    self.breaker.record_failure(at);
                    break Disposition::Faulted;
                }
            }
        };
        record.retries = retries;
        match disposition {
            Disposition::Faulted => {
                record.fallback_local = true;
                Ok(Outcome::Complete(
                    self.complete_locally(record, upload_end, device),
                ))
            }
            Disposition::Shed { retry_after, k } => {
                // Pre-seed the profile with the server's own load factor
                // so re-entry decisions are load-aware immediately.
                self.profile.set_k(k);
                self.breaker.record_failure(at);
                record.rejected = true;
                self.emit_span(&record, SpanKind::Rejected, upload_end, retry_after, 0);
                Ok(Outcome::Complete(
                    self.complete_locally(record, upload_end, device),
                ))
            }
            Disposition::Ran(SuffixOutcome::Done { completion }) => {
                Ok(Outcome::Complete(self.settle(
                    record,
                    upload_end,
                    completion,
                    policy_decided,
                    backend,
                    transport,
                )))
            }
            Disposition::Ran(SuffixOutcome::Pending { task }) => {
                Ok(Outcome::Deferred(PendingRequest {
                    task,
                    arrive: upload_end,
                    record,
                    policy_decided,
                }))
            }
            Disposition::Ran(SuffixOutcome::Rejected { .. }) => {
                unreachable!("rejections are routed to Disposition::Shed")
            }
        }
    }

    /// Graceful degradation: the suffix exchange is lost (wire fault) or
    /// shed (admission control), so the device re-executes the remaining
    /// layers `L_{p+1}..L_n` itself, starting at the moment the engine
    /// gave up on the wire. The caller flags *why* on the record
    /// (`fallback_local` vs `rejected`) before handing it in.
    fn complete_locally<D: DeviceExecutor + ?Sized>(
        &mut self,
        mut record: InferenceRecord,
        resume_at: SimTime,
        device: &mut D,
    ) -> InferenceRecord {
        let local = device.execute_range(&self.graph, record.p, self.graph.len(), &mut self.rng);
        record.device += local;
        record.server = SimDuration::ZERO;
        record.download = SimDuration::ZERO;
        record.total = (resume_at + local).since(record.start);
        self.observe_finish(&record);
        record
    }

    /// Completes a deferred request once the driver observed its
    /// completion time.
    pub fn finish<S, T>(
        &mut self,
        pending: PendingRequest,
        completion: SimTime,
        backend: &mut S,
        transport: &mut T,
    ) -> InferenceRecord
    where
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        self.settle(
            pending.record,
            pending.arrive,
            completion,
            pending.policy_decided,
            backend,
            transport,
        )
    }

    /// Runs one request to completion, blocking on the backend if it
    /// queues.
    ///
    /// # Errors
    ///
    /// Propagates transport/backend failures (wire runtimes only).
    pub fn run<D, S, T>(
        &mut self,
        at: SimTime,
        device: &mut D,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<InferenceRecord, ProtocolError>
    where
        D: DeviceExecutor + ?Sized,
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        match self.start(at, device, backend, transport)? {
            Outcome::Complete(record) => Ok(record),
            Outcome::Deferred(pending) => {
                let completion = backend.wait(pending.task);
                Ok(self.finish(pending, completion, backend, transport))
            }
        }
    }

    /// Shared tail of every offloaded request: measure server time, feed
    /// the load tracker, optionally download the result.
    fn settle<S, T>(
        &mut self,
        mut record: InferenceRecord,
        arrive: SimTime,
        completion: SimTime,
        policy_decided: bool,
        backend: &mut S,
        transport: &mut T,
    ) -> InferenceRecord
    where
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        let server = completion.since(arrive);
        record.server = server;
        // The tracker normalises against the *unscaled* model prediction
        // for this suffix — the §III-C observed/predicted ratio.
        let predicted = SimDuration::from_secs_f64(self.solver.suffix_edge_secs(record.p));
        backend.complete(completion, server, predicted);
        if let Some(m) = &self.metrics {
            m.server_seconds.observe(server.as_secs_f64());
        }
        self.emit_span(&record, SpanKind::ServerSuffix, arrive, server, 0);
        let mut end = completion;
        if self.config.model_download {
            let dl_end = transport.download(self.graph.output().size_bytes(), end, &mut self.rng);
            record.download = dl_end.since(end);
            end = dl_end;
        }
        record.total = end.since(record.start);
        self.feedback(policy_decided, &record);
        self.observe_finish(&record);
        record
    }
}

//! The shared per-request offload pipeline.
//!
//! Every driver in this crate — the co-simulated [`OffloadingSystem`]
//! (`system`), the threaded wire runtime (`threaded`) and the shared-GPU
//! multi-client run (`multi_client`) — executes the same LoADPart loop per
//! request:
//!
//! 1. run the periodic runtime-profiler action if due ([`RuntimeProfile`]:
//!    bandwidth probe + `k` fetch, §IV);
//! 2. pick the partition point with the installed
//!    [`PartitionPolicy`] (Algorithm 1 for LoADPart);
//! 3. fetch the partitioned graph from the device-side partition cache
//!    (§III-A);
//! 4. execute `L_1..L_p` on the device, upload the crossing tensors, hand
//!    the suffix to the server;
//! 5. when the suffix completes, report the observed server time to the
//!    load-factor tracker (§III-C).
//!
//! [`OffloadEngine`] owns that loop once. What differs per driver is *how*
//! each step executes, expressed as three traits the engine is generic
//! over:
//!
//! * [`DeviceExecutor`] — how `L_1..L_p` runs (sampled latency model vs
//!   logical no-op);
//! * [`Transport`] — how probes and tensors move (simulated [`lp_net::Link`]
//!   vs protocol frames over channels);
//! * [`ServerBackend`] — how the suffix executes and where `k` comes from
//!   (queueing [`lp_hardware::GpuSim`], shared or exclusive, vs a remote
//!   server thread).
//!
//! Backends that queue (a shared GPU) return [`SuffixOutcome::Pending`];
//! drivers that interleave many clients keep the [`PendingRequest`] and
//! call [`OffloadEngine::finish`] when the completion arrives. Drivers
//! that block per request just call [`OffloadEngine::run`].
//!
//! The decision step itself is pluggable: [`OffloadEngine::new`] takes
//! the classic [`Policy`] enum spec (wrapped in a
//! [`MemoPolicy`] when
//! [`EngineConfig::decision_memo`] is set), while
//! [`OffloadEngine::with_policy`] installs any [`PartitionPolicy`]
//! trait object — including stateful online learners, which the engine
//! feeds completed records through [`PartitionPolicy::observe`] (guarded:
//! fallback-local and admission-shed records never reach the learner).
//!
//! [`OffloadingSystem`]: crate::system::OffloadingSystem
//! [`Policy`]: crate::baselines::Policy

pub mod backends;
pub mod breaker;
mod config;
mod profile;
mod record;

pub use breaker::{BreakerState, CircuitBreaker, WireGate};
pub use config::{seeded_jitter, splitmix64, ConfigError, EngineConfig};
pub use profile::RuntimeProfile;
pub use record::InferenceRecord;

use crate::algorithm::PartitionSolver;
use crate::baselines::Policy;
use crate::cache::PartitionCache;
use crate::policy::{MemoPolicy, PartitionPolicy, PolicyContext};
use crate::protocol::ProtocolError;
use crate::telemetry::{EngineMetrics, SpanEvent, SpanKind, Telemetry};
use lp_graph::{quantized_transmission_series, ComputationGraph, Precision};
use lp_hardware::TaskId;
use lp_profiler::PredictionModels;
use lp_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// How a driver executes device-side layers.
pub trait DeviceExecutor {
    /// Executes layers `L_{from+1}..L_to` and returns the time it took.
    /// The engine uses `0..p` for the normal prefix and `p..n` when the
    /// offload path fails mid-request and the device has to finish the
    /// inference itself.
    fn execute_range(
        &mut self,
        graph: &ComputationGraph,
        from: usize,
        to: usize,
        rng: &mut StdRng,
    ) -> SimDuration;

    /// Executes the prefix `L_1..L_p` and returns the time it took.
    fn execute_prefix(
        &mut self,
        graph: &ComputationGraph,
        p: usize,
        rng: &mut StdRng,
    ) -> SimDuration {
        self.execute_range(graph, 0, p, rng)
    }
}

/// One suffix execution handed to a [`ServerBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuffixRequest {
    /// Engine-assigned request id.
    pub request_id: u64,
    /// Partition point: the server runs `L_{p+1}..L_n`.
    pub p: usize,
    /// Negotiated upload-tensor precision; the server dequantizes at this
    /// width (fp32 = the identity path).
    pub precision: Precision,
    /// Bytes of crossing tensors shipped with the request (already
    /// quantized: at a narrow precision this is the packed size).
    pub upload_bytes: u64,
    /// When the upload finished — the suffix cannot start earlier, and
    /// server time is measured from here.
    pub arrive: SimTime,
}

/// What a [`ServerBackend`] did with a suffix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SuffixOutcome {
    /// The suffix ran to completion (blocking backends).
    Done {
        /// When the suffix finished on the server.
        completion: SimTime,
    },
    /// The suffix is queued; the driver must observe the completion and
    /// call [`OffloadEngine::finish`] (shared-GPU backends).
    Pending {
        /// Handle to poll the simulator with.
        task: TaskId,
    },
    /// The server's admission control shed the request — its pending-work
    /// budget is exhausted. The device runs the suffix itself; no retry
    /// (the server told us it is overloaded, hammering it again is
    /// counter-productive).
    Rejected {
        /// Predicted time until the server's backlog drains.
        retry_after: SimDuration,
        /// The server's load factor, piggybacked so the client's profile
        /// is load-aware immediately.
        k: f64,
    },
}

/// How a driver executes the server side: suffix execution and the load
/// feedback loop.
pub trait ServerBackend {
    /// Advances server-side clocks to `now` (called once per request,
    /// before anything else).
    fn advance(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Server-side housekeeping that runs every request regardless of the
    /// profiler cadence — the GPU-utilization watchdog in the
    /// co-simulation.
    fn monitor(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Answers the device's periodic "what is `k` now?" query.
    ///
    /// # Errors
    ///
    /// Wire backends propagate [`ProtocolError`] on malformed replies.
    fn query_k(&mut self, now: SimTime) -> Result<f64, ProtocolError>;

    /// Executes (or enqueues) the suffix `L_{p+1}..L_n`.
    ///
    /// # Errors
    ///
    /// Wire backends propagate [`ProtocolError`] on malformed responses.
    fn execute_suffix(
        &mut self,
        graph: &ComputationGraph,
        req: &SuffixRequest,
        rng: &mut StdRng,
    ) -> Result<SuffixOutcome, ProtocolError>;

    /// Blocks until a [`SuffixOutcome::Pending`] task completes and
    /// returns the completion time. Only called by [`OffloadEngine::run`];
    /// backends that never defer keep the default.
    fn wait(&mut self, task: TaskId) -> SimTime {
        let _ = task;
        unreachable!("backend never defers suffix execution")
    }

    /// Feeds one observed suffix execution to the server's load-factor
    /// tracker. Backends whose server observes executions itself (the
    /// threaded server thread) leave this a no-op.
    fn complete(&mut self, completion: SimTime, observed: SimDuration, predicted: SimDuration);
}

/// How bytes move between device and server.
pub trait Transport {
    /// Sends one bandwidth probe at `now`, feeding `profiler`.
    ///
    /// # Errors
    ///
    /// Wire transports propagate [`ProtocolError`] on a malformed ack.
    fn probe(
        &mut self,
        profiler: &mut lp_net::ProbeProfiler,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Result<(), ProtocolError>;

    /// Ships `bytes` of crossing tensors starting at `start`; returns the
    /// arrival time at the server. Real uploads also feed the estimator
    /// passively (§IV).
    ///
    /// # Errors
    ///
    /// Wire transports propagate [`ProtocolError`].
    fn upload(
        &mut self,
        profiler: &mut lp_net::ProbeProfiler,
        bytes: u64,
        start: SimTime,
        rng: &mut StdRng,
    ) -> Result<SimTime, ProtocolError>;

    /// Ships the result back starting at `start`; returns when it lands on
    /// the device.
    fn download(&mut self, bytes: u64, start: SimTime, rng: &mut StdRng) -> SimTime;
}

/// An offload request whose suffix is still queued on the server.
#[derive(Debug)]
pub struct PendingRequest {
    /// Handle the driver polls the simulator with.
    pub task: TaskId,
    arrive: SimTime,
    record: InferenceRecord,
    /// Whether the installed policy made this decision (as opposed to
    /// the degraded local path) — gates the feedback hook at settle time.
    policy_decided: bool,
    /// Which endpoint the suffix was handed to (0 for single-server
    /// drivers) — settle-time telemetry reads that endpoint's breaker.
    endpoint: usize,
}

impl PendingRequest {
    /// The partially filled record (server/download/total not yet final).
    #[must_use]
    pub fn record(&self) -> &InferenceRecord {
        &self.record
    }
}

/// Result of [`OffloadEngine::start`].
#[derive(Debug)]
pub enum Outcome {
    /// The request ran to completion.
    Complete(InferenceRecord),
    /// The suffix is queued on a shared backend.
    Deferred(PendingRequest),
}

/// An offload attempt whose suffix exchange failed *after* the prefix ran
/// and the crossing tensors were produced. The partition point is fixed —
/// `L_1..L_p` already executed on the device — so a cluster driver can
/// re-issue exactly this suffix on another endpoint
/// ([`OffloadEngine::failover_on`]) or give up and finish locally
/// ([`OffloadEngine::complete_failed`]).
#[derive(Debug)]
pub struct FailedAttempt {
    /// The in-flight record; `fallback_local` / `rejected` reflect the
    /// *last* failed attempt and are cleared by the next failover.
    record: InferenceRecord,
    /// When the engine gave up on the wire — the next attempt (or the
    /// local completion) resumes from here.
    resume_at: SimTime,
    /// The endpoint the failed attempt used.
    endpoint: usize,
    /// The server's drain estimate when the failure was an admission shed.
    retry_after: Option<SimDuration>,
    /// Cumulative backoff sleeping already charged to this request.
    spent: Duration,
}

impl FailedAttempt {
    /// The partially filled record of the failed attempt.
    #[must_use]
    pub fn record(&self) -> &InferenceRecord {
        &self.record
    }

    /// Whether the failure was an admission shed (vs a wire fault).
    #[must_use]
    pub fn rejected(&self) -> bool {
        self.record.rejected
    }

    /// The server's backlog-drain estimate, when it shed the request.
    #[must_use]
    pub fn retry_after(&self) -> Option<SimDuration> {
        self.retry_after
    }

    /// The endpoint the failed attempt used.
    #[must_use]
    pub fn endpoint(&self) -> usize {
        self.endpoint
    }
}

/// How a suffix hand-off ended: accepted, shed by admission control, or
/// lost to wire faults.
enum Disposition {
    Ran(SuffixOutcome),
    Shed { retry_after: SimDuration, k: f64 },
    Faulted,
}

/// Result of [`OffloadEngine::start_attempt_on`] — [`Outcome`] plus the
/// two failure shapes a cluster driver reroutes instead of degrading.
#[derive(Debug)]
pub enum AttemptOutcome {
    /// The request ran to completion on the attempted endpoint.
    Complete(InferenceRecord),
    /// The suffix is queued on a shared backend.
    Deferred(PendingRequest),
    /// The endpoint was unusable before anything ran — breaker/cooldown
    /// blocked it, or the profiler refresh failed. Nothing executed and no
    /// request id was consumed: restart the whole attempt on another
    /// endpoint, or fall back to [`OffloadEngine::start_on`] (whose gate
    /// will short-circuit to a plain local decision).
    NoService,
    /// The suffix exchange failed after the prefix ran: fail the suffix
    /// over with [`OffloadEngine::failover_on`] or finish locally with
    /// [`OffloadEngine::complete_failed`].
    Failed(FailedAttempt),
}

/// Everything the engine tracks *per server*: the runtime profile
/// (bandwidth estimate + cached `k` + fault cooldown), the circuit
/// breaker, and the last `retry_after` hint the server's admission
/// control sent. Endpoint 0 always exists and is what the single-server
/// API (`start`, `profile()`, `breaker()`) operates on; cluster drivers
/// add more with [`OffloadEngine::add_endpoint`]. Keeping the state
/// per-endpoint is what makes one sick server unable to blind the client
/// to healthy ones: a probe failure on server A trips only A's breaker
/// and only A's cooldown.
#[derive(Debug)]
struct Endpoint {
    profile: RuntimeProfile,
    breaker: CircuitBreaker,
    /// Transition count already surfaced through telemetry, so each
    /// finish span reports only the delta since the previous request.
    breaker_reported: u64,
    /// The drain estimate from this server's last admission shed; the
    /// next retry backoff against this endpoint uses it (once) instead of
    /// the exponential schedule.
    retry_after_hint: Option<Duration>,
}

impl Endpoint {
    fn new(config: &EngineConfig) -> Self {
        // Half-open probes are paced to the runtime profiler: one wire
        // attempt per profiler period while recovering.
        Endpoint {
            profile: RuntimeProfile::new(config.bandwidth_window, config.profiler_period),
            breaker: CircuitBreaker::new(
                config.breaker_failure_threshold,
                config.breaker_open_period,
                config.profiler_period,
            ),
            breaker_reported: 0,
            retry_after_hint: None,
        }
    }
}

/// The per-client LoADPart runtime: solver + policy + per-endpoint
/// profiles/breakers + partition cache, driving one request at a time over
/// whatever device/transport/server backends the driver supplies.
#[derive(Debug)]
pub struct OffloadEngine {
    graph: Arc<ComputationGraph>,
    solver: PartitionSolver,
    policy: Box<dyn PartitionPolicy>,
    config: EngineConfig,
    endpoints: Vec<Endpoint>,
    device_cache: PartitionCache,
    rng: StdRng,
    next_id: u64,
    client: usize,
    telemetry: Telemetry,
    metrics: Option<EngineMetrics>,
    /// Quantized transmission series per narrow precision, built lazily
    /// the first time a policy negotiates that width (indexed in
    /// [`Precision::NARROW`] order). Fp32 stays on the partition's raw
    /// byte count, so fp32-only runs never touch this.
    quant_tx: [Option<Vec<u64>>; 3],
    /// splitmix64 state for backoff jitter — deliberately separate from
    /// `rng` so jitter draws never perturb measurement sampling (and thus
    /// never change logical records).
    backoff_state: u64,
}

impl OffloadEngine {
    /// Assembles an engine for one DNN on one client, from a [`Policy`]
    /// enum spec. When [`EngineConfig::decision_memo`] is set the policy
    /// is wrapped in a [`MemoPolicy`], so back-to-back requests with an
    /// unchanged quantized `(bandwidth, k)` skip the decision scan — safe
    /// because every enum variant is a pure function of that key.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations with [`ConfigError`].
    pub fn new(
        graph: impl Into<Arc<ComputationGraph>>,
        policy: Policy,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
        client: usize,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        let built = if config.decision_memo {
            Box::new(MemoPolicy::new(policy.build()))
        } else {
            policy.build()
        };
        Self::with_policy(graph, built, user_models, edge_models, client, config)
    }

    /// Assembles an engine around an externally supplied
    /// [`PartitionPolicy`] — the entry point for stateful policies such as
    /// the online-learning bandit. No memo wrapper is applied here
    /// ([`EngineConfig::decision_memo`] only affects [`OffloadEngine::new`]):
    /// a learning policy's decision may change between identical
    /// `(bandwidth, k)` keys, so memoizing it would freeze learning. Wrap
    /// in [`MemoPolicy`] yourself if the policy is pure.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations with [`ConfigError`].
    pub fn with_policy(
        graph: impl Into<Arc<ComputationGraph>>,
        policy: Box<dyn PartitionPolicy>,
        user_models: &PredictionModels,
        edge_models: &PredictionModels,
        client: usize,
        config: EngineConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let graph: Arc<ComputationGraph> = graph.into();
        let solver = PartitionSolver::new(&graph, user_models, edge_models);
        let rng = StdRng::seed_from_u64(config.seed);
        let endpoints = vec![Endpoint::new(&config)];
        let backoff_state = config.seed ^ 0xB0FF_B0FF_B0FF_B0FF;
        Ok(Self {
            graph,
            solver,
            policy,
            config,
            endpoints,
            device_cache: PartitionCache::new(),
            rng,
            next_id: 0,
            client,
            telemetry: Telemetry::disabled(),
            metrics: None,
            quant_tx: [None, None, None],
            backoff_state,
        })
    }

    /// Registers one more server endpoint (its own [`RuntimeProfile`] and
    /// [`CircuitBreaker`], both fresh) and returns its id. Endpoint 0 is
    /// created by the constructor; cluster drivers call this once per
    /// extra server and pass the id to the `*_on` request entry points.
    pub fn add_endpoint(&mut self) -> usize {
        self.endpoints.push(Endpoint::new(&self.config));
        self.endpoints.len() - 1
    }

    /// How many server endpoints this engine tracks (≥ 1).
    #[must_use]
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// How many requests were answered from the decision memo instead of
    /// re-running the decision scan (0 unless the installed policy carries
    /// a [`MemoPolicy`] layer).
    #[must_use]
    pub fn decision_memo_hits(&self) -> u64 {
        self.policy.memo_hits()
    }

    /// The installed decision policy (for introspecting learner state in
    /// drivers and tests).
    #[must_use]
    pub fn policy(&self) -> &dyn PartitionPolicy {
        self.policy.as_ref()
    }

    /// Runs the policy feedback hook for a settled record. Guarded: the
    /// hook only fires when the installed policy actually made the
    /// decision (not the degraded local path) and the record is a real
    /// end-to-end measurement — fallback-local and admission-shed records
    /// carry synthetic local-completion timings that would poison an
    /// online learner's wire-timing estimates.
    fn feedback(&mut self, policy_decided: bool, record: &InferenceRecord) {
        if policy_decided && !record.fallback_local && !record.rejected {
            self.policy.observe(record);
        }
    }

    /// Installs an observability handle. Instrument handles are registered
    /// here, off the per-request path; with [`Telemetry::disabled`]
    /// (the default) the request path performs no telemetry work and no
    /// allocation.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.metrics = telemetry.registry().map(EngineMetrics::register);
        self.telemetry = telemetry;
    }

    /// The installed observability handle (disabled by default).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Wire bytes for the cut at `p` at `precision`: the partition's raw
    /// fp32 bytes, or the packed size from the lazily built quantized
    /// series (scale headers included).
    fn wire_upload_bytes(&mut self, p: usize, precision: Precision, raw: u64) -> u64 {
        let Some(idx) = Precision::NARROW.iter().position(|&q| q == precision) else {
            return raw;
        };
        let series = self.quant_tx[idx]
            .get_or_insert_with(|| quantized_transmission_series(&self.graph, precision));
        series[p]
    }

    /// Builds and emits one span event for `record`. The event is all
    /// scalars; when no sink is installed this is a single branch.
    fn emit_span(
        &self,
        record: &InferenceRecord,
        kind: SpanKind,
        at: SimTime,
        duration: SimDuration,
        bytes: u64,
    ) {
        if !self.telemetry.traces() {
            return;
        }
        self.telemetry.emit(SpanEvent {
            client: record.client,
            request_id: record.request_id,
            kind,
            at,
            duration,
            p: record.p,
            k: record.k_used,
            bandwidth_mbps: record.bandwidth_est_mbps,
            bytes,
            fallback_local: record.fallback_local,
        });
    }

    /// Telemetry tail shared by every way a request can settle: bumps the
    /// outcome counters, surfaces the finishing endpoint's breaker
    /// activity, and emits the `Finish` span.
    fn observe_finish(&mut self, endpoint: usize, record: &InferenceRecord) {
        if let Some(m) = &self.metrics {
            if record.fallback_local {
                m.fallbacks.incr(1);
            } else if record.rejected {
                m.rejected.incr(1);
            } else if record.offloaded() {
                m.offloaded.incr(1);
            } else {
                m.local.incr(1);
            }
            if record.retries > 0 {
                m.retries.incr(u64::from(record.retries));
            }
            m.breaker_state
                .set(match self.endpoints[endpoint].breaker.state() {
                    BreakerState::Closed => 0.0,
                    BreakerState::HalfOpen => 1.0,
                    BreakerState::Open => 2.0,
                });
        }
        let transitions = self.endpoints[endpoint].breaker.transitions();
        let delta = transitions - self.endpoints[endpoint].breaker_reported;
        if delta > 0 {
            self.endpoints[endpoint].breaker_reported = transitions;
            if let Some(m) = &self.metrics {
                m.breaker_transitions.incr(delta);
            }
            // The span's byte field carries the transition delta — spans
            // are all-scalar by design and this request caused exactly
            // those transitions.
            self.emit_span(
                record,
                SpanKind::Breaker,
                record.start,
                SimDuration::ZERO,
                delta,
            );
        }
        self.emit_span(
            record,
            SpanKind::Finish,
            record.start,
            record.total,
            record.uploaded_bytes,
        );
    }

    /// The client-side circuit breaker of endpoint 0 (the single-server
    /// path; for inspecting state in drivers and tests).
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.endpoints[0].breaker
    }

    /// The circuit breaker guarding `endpoint`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered.
    #[must_use]
    pub fn breaker_of(&self, endpoint: usize) -> &CircuitBreaker {
        &self.endpoints[endpoint].breaker
    }

    /// Mutable access to the breaker guarding `endpoint` (cluster drivers
    /// and tests scripting breaker states directly).
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered.
    #[must_use]
    pub fn breaker_of_mut(&mut self, endpoint: usize) -> &mut CircuitBreaker {
        &mut self.endpoints[endpoint].breaker
    }

    /// The solver (for inspecting predictions).
    #[must_use]
    pub fn solver(&self) -> &PartitionSolver {
        &self.solver
    }

    /// The graph this engine serves.
    #[must_use]
    pub fn graph(&self) -> &ComputationGraph {
        &self.graph
    }

    /// The device-side partition cache.
    #[must_use]
    pub fn device_cache(&self) -> &PartitionCache {
        &self.device_cache
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The runtime profile of endpoint 0 (bandwidth estimate + cached `k`;
    /// the single-server path).
    #[must_use]
    pub fn profile(&self) -> &RuntimeProfile {
        &self.endpoints[0].profile
    }

    /// Mutable endpoint-0 profile access (drivers that inject bandwidth).
    #[must_use]
    pub fn profile_mut(&mut self) -> &mut RuntimeProfile {
        &mut self.endpoints[0].profile
    }

    /// The runtime profile tracking `endpoint`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered.
    #[must_use]
    pub fn profile_of(&self, endpoint: usize) -> &RuntimeProfile {
        &self.endpoints[endpoint].profile
    }

    /// Mutable access to the profile tracking `endpoint` (cluster drivers
    /// injecting per-link bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered.
    #[must_use]
    pub fn profile_of_mut(&mut self, endpoint: usize) -> &mut RuntimeProfile {
        &mut self.endpoints[endpoint].profile
    }

    /// Fetches `k` from the server out of cadence and caches it — the
    /// explicit runtime-profiler action. Transient wire failures are
    /// retried up to [`EngineConfig::max_retries`] times with exponential
    /// backoff before the error surfaces.
    ///
    /// # Errors
    ///
    /// Propagates backend failures once the retry budget is exhausted (or
    /// immediately on a non-transient failure such as
    /// [`ProtocolError::Disconnected`]).
    pub fn refresh_k<S: ServerBackend + ?Sized>(
        &mut self,
        now: SimTime,
        backend: &mut S,
    ) -> Result<f64, ProtocolError> {
        let mut attempt = 0u32;
        let mut spent = Duration::ZERO;
        loop {
            match backend.query_k(now) {
                Ok(k) => {
                    self.endpoints[0].profile.set_k(k);
                    return Ok(k);
                }
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    if !self.backoff_sleep(0, attempt, &mut spent) {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sleeps before retry `attempt` (1-based) against `endpoint` and
    /// charges the sleep to the request's retry budget. Wall-clock, not
    /// logical time: the wire the retries go over is real.
    ///
    /// The base wait is the endpoint's last `Rejected{retry_after}` hint
    /// when one is pending (consumed here), otherwise the exponential
    /// schedule; [`EngineConfig::retry_jitter`] spreads it over
    /// `[0.5, 1.5)x` from the deterministic side stream. Returns `false` —
    /// without sleeping — when the jittered wait would push the request
    /// past [`EngineConfig::retry_budget`]; the caller must then stop
    /// retrying. The budget check uses the *planned* wait, so replays with
    /// the same seed truncate retry loops at exactly the same attempt.
    fn backoff_sleep(&mut self, endpoint: usize, attempt: u32, spent: &mut Duration) -> bool {
        let base = self.endpoints[endpoint]
            .retry_after_hint
            .take()
            .unwrap_or_else(|| self.config.backoff_for(attempt));
        let wait = if self.config.retry_jitter {
            seeded_jitter(base, &mut self.backoff_state)
        } else {
            base
        };
        let budget = self.config.retry_budget;
        if !budget.is_zero() && *spent + wait > budget {
            return false;
        }
        *spent += wait;
        if wait > Duration::ZERO {
            std::thread::sleep(wait);
        }
        true
    }

    /// Marks `endpoint` faulted at `at`: cooldown keeps decisions local
    /// and the wire quiet, and the failure counts toward its breaker.
    fn fault_endpoint(&mut self, endpoint: usize, at: SimTime) {
        let ep = &mut self.endpoints[endpoint];
        ep.profile.enter_cooldown(at, self.config.fault_cooldown);
        ep.breaker.record_failure(at);
    }

    /// Remembers the drain estimate an admission shed carried, so the next
    /// backoff against this endpoint waits what the server asked for
    /// instead of the blind exponential schedule. Capped at one second —
    /// a confused server must not be able to stall a client arbitrarily.
    fn remember_retry_after(&mut self, endpoint: usize, retry_after: SimDuration) {
        let hint = Duration::from_secs_f64(retry_after.as_secs_f64().min(1.0));
        self.endpoints[endpoint].retry_after_hint = Some(hint);
    }

    /// Starts one inference request at `at`: profiler refresh, decision,
    /// prefix, upload, suffix hand-off. Returns a completed record, or a
    /// [`PendingRequest`] when the backend queued the suffix.
    ///
    /// Wire faults never abort the request. A refresh (probe / `k` fetch)
    /// or suffix exchange that keeps failing after
    /// [`EngineConfig::max_retries`] retries degrades the request to local
    /// execution — the device runs the remaining layers itself, the record
    /// comes back with [`InferenceRecord::fallback_local`] set, and the
    /// profile enters a [`EngineConfig::fault_cooldown`] during which
    /// decisions stay local and the wire is left alone. Once the cooldown
    /// expires, the next due refresh probes the wire again and a success
    /// restores offloading.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from the upload leg (no current
    /// transport fails there; wire payloads ride inside the offload
    /// request frame).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the backend's current simulated time.
    pub fn start<D, S, T>(
        &mut self,
        at: SimTime,
        device: &mut D,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<Outcome, ProtocolError>
    where
        D: DeviceExecutor + ?Sized,
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        self.start_on(0, at, device, backend, transport)
    }

    /// [`OffloadEngine::start`] against a specific endpoint's profile,
    /// breaker and cooldown. Single-server semantics: any wire failure
    /// degrades this request to local completion on the device.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from the upload leg.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered or `at` is before the
    /// backend's current simulated time.
    pub fn start_on<D, S, T>(
        &mut self,
        endpoint: usize,
        at: SimTime,
        device: &mut D,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<Outcome, ProtocolError>
    where
        D: DeviceExecutor + ?Sized,
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        match self.start_inner(endpoint, at, false, device, backend, transport)? {
            AttemptOutcome::Complete(record) => Ok(Outcome::Complete(record)),
            AttemptOutcome::Deferred(pending) => Ok(Outcome::Deferred(pending)),
            AttemptOutcome::NoService | AttemptOutcome::Failed(_) => {
                unreachable!("single-server mode degrades locally instead of failing the attempt")
            }
        }
    }

    /// Starts one inference attempt against `endpoint` with *cluster*
    /// semantics: instead of degrading to local completion, wire failures
    /// surface as [`AttemptOutcome::NoService`] (nothing ran — retry the
    /// whole attempt elsewhere) or [`AttemptOutcome::Failed`] (the prefix
    /// ran at a fixed `p` — fail the suffix over with
    /// [`OffloadEngine::failover_on`]). The failing endpoint's breaker and
    /// cooldown are recorded exactly as in single-server mode.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from the upload leg.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered or `at` is before the
    /// backend's current simulated time.
    pub fn start_attempt_on<D, S, T>(
        &mut self,
        endpoint: usize,
        at: SimTime,
        device: &mut D,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<AttemptOutcome, ProtocolError>
    where
        D: DeviceExecutor + ?Sized,
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        self.start_inner(endpoint, at, true, device, backend, transport)
    }

    /// The shared request pipeline. `failfast` selects cluster semantics
    /// (surface failures for rerouting) over single-server semantics
    /// (degrade to local completion in place).
    fn start_inner<D, S, T>(
        &mut self,
        endpoint: usize,
        at: SimTime,
        failfast: bool,
        device: &mut D,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<AttemptOutcome, ProtocolError>
    where
        D: DeviceExecutor + ?Sized,
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        backend.advance(at);
        let cooling = self.endpoints[endpoint].profile.in_cooldown(at);
        // The breaker gates all wire traffic. A fault cooldown already
        // keeps the wire quiet, so it does not consume the half-open
        // probe slot.
        let gate = if cooling {
            WireGate::Block
        } else {
            self.endpoints[endpoint].breaker.gate(at)
        };
        let blocked = gate == WireGate::Block;
        let probing = gate == WireGate::Probe;
        if failfast && blocked {
            // Cluster mode never burns a blocked endpoint's request on a
            // guaranteed-local decision; the driver reroutes it.
            return Ok(AttemptOutcome::NoService);
        }
        let mut retries = 0u32;
        let mut spent = Duration::ZERO;
        // True only when the wire failed *during this request* — requests
        // that stay local because an earlier request tripped the cooldown
        // are ordinary local decisions, not fallbacks.
        let mut faulted = false;
        if !blocked {
            let mut attempt = 0u32;
            loop {
                let ep = &mut self.endpoints[endpoint];
                // The half-open probe must actually touch the wire, so it
                // bypasses the profiler cadence.
                let refreshed = if probing {
                    ep.profile
                        .refresh_now(at, transport, backend, &mut self.rng, &self.telemetry)
                } else {
                    ep.profile
                        .refresh(at, transport, backend, &mut self.rng, &self.telemetry)
                };
                match refreshed {
                    Ok(()) => {
                        if probing {
                            // The half-open probe succeeded: close the
                            // breaker (the refreshed `k` keeps Algorithm 1
                            // load-aware, so re-entry is safe).
                            self.endpoints[endpoint].breaker.record_success(at);
                        }
                        break;
                    }
                    Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                        attempt += 1;
                        retries += 1;
                        if !self.backoff_sleep(endpoint, attempt, &mut spent) {
                            // Retry budget exhausted: same degradation as
                            // a non-transient failure.
                            self.fault_endpoint(endpoint, at);
                            faulted = true;
                            break;
                        }
                    }
                    Err(_) => {
                        self.fault_endpoint(endpoint, at);
                        faulted = true;
                        break;
                    }
                }
            }
        }
        if failfast && faulted {
            // Nothing ran and no request id was consumed; the driver
            // restarts the attempt on the next-best endpoint.
            return Ok(AttemptOutcome::NoService);
        }
        backend.monitor(at);
        let n = self.graph.len();
        let bandwidth = self.endpoints[endpoint].profile.bandwidth_mbps(at);
        let k = self.endpoints[endpoint].profile.k();
        // Wall-clock spent actually deciding; memo hits (detected via the
        // policy's hit counter) skip the timer observation.
        let mut decide_secs: Option<f64> = None;
        let mut memo_hit = false;
        // True only on the healthy arm, where the installed policy made
        // the call — the degraded path below bypasses it entirely.
        let mut policy_decided = false;
        let decision = match bandwidth {
            Some(bw) if !faulted && !blocked => {
                policy_decided = true;
                let hits_before = self.policy.memo_hits();
                let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
                let ctx = PolicyContext {
                    solver: &self.solver,
                    bandwidth_mbps: bw,
                    k,
                    now: at,
                };
                let d = self.policy.decide(&ctx);
                memo_hit = self.policy.memo_hits() > hits_before;
                if !memo_hit {
                    decide_secs = started.map(|s| s.elapsed().as_secs_f64());
                }
                d
            }
            // Degraded: everything runs on the device. `latency_at(n, ..)`
            // ignores the wire terms, so a placeholder bandwidth is fine
            // even when the very first refresh failed and no estimate
            // exists yet.
            _ => {
                let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
                let d = self
                    .solver
                    .latency_at(n, bandwidth.unwrap_or(1.0), k.max(1.0));
                decide_secs = started.map(|s| s.elapsed().as_secs_f64());
                d
            }
        };
        let p = decision.p;
        let precision = decision.precision;

        let (partition, cache_hit) = self
            .device_cache
            .get_or_partition(&self.graph, p)
            .expect("decision p in range");

        if let Some(m) = &self.metrics {
            m.requests.incr(1);
            if let Some(secs) = decide_secs {
                m.decision_seconds.observe(secs);
            }
            if memo_hit {
                m.decision_memo_hits.incr(1);
            }
            if cache_hit {
                m.cache_hits.incr(1);
            } else {
                m.cache_misses.incr(1);
            }
            m.k.set(k);
            m.bandwidth_mbps.set(bandwidth.unwrap_or(0.0));
            m.partition_point.set(p as f64);
            m.precision_decisions[precision.wire() as usize].incr(1);
        }

        let device_time = device.execute_prefix(&self.graph, p, &mut self.rng);
        if let Some(m) = &self.metrics {
            m.device_seconds.observe(device_time.as_secs_f64());
        }
        let request_id = self.next_id;
        self.next_id += 1;
        let mut record = InferenceRecord {
            request_id,
            client: self.client,
            start: at,
            p,
            k_used: k,
            bandwidth_est_mbps: bandwidth.unwrap_or(0.0),
            predicted: decision.predicted,
            device: device_time,
            upload: SimDuration::ZERO,
            precision,
            uploaded_bytes: 0,
            raw_bytes: 0,
            server: SimDuration::ZERO,
            download: SimDuration::ZERO,
            total: device_time,
            cache_hit,
            fallback_local: faulted,
            rejected: false,
            retries,
        };
        self.emit_span(&record, SpanKind::Decide, at, SimDuration::ZERO, 0);
        self.emit_span(&record, SpanKind::DevicePrefix, at, device_time, 0);
        if p == n {
            // Local inference: nothing leaves the device.
            self.feedback(policy_decided, &record);
            self.observe_finish(endpoint, &record);
            return Ok(AttemptOutcome::Complete(record));
        }

        let raw_bytes = partition.upload_bytes(&self.graph);
        let upload_bytes = self.wire_upload_bytes(p, precision, raw_bytes);
        let upload_start = at + device_time;
        if precision != Precision::Fp32 {
            // Quantization happens on-device between the prefix and the
            // upload; its cost is folded into the measured prefix time, so
            // the span is instantaneous and carries the bytes saved.
            self.emit_span(
                &record,
                SpanKind::Quantize,
                upload_start,
                SimDuration::ZERO,
                raw_bytes.saturating_sub(upload_bytes),
            );
        }
        let upload_end = transport.upload(
            self.endpoints[endpoint].profile.probe_profiler_mut(),
            upload_bytes,
            upload_start,
            &mut self.rng,
        )?;
        record.upload = upload_end.since(upload_start);
        record.uploaded_bytes = upload_bytes;
        record.raw_bytes = raw_bytes;
        if let Some(m) = &self.metrics {
            m.upload_seconds.observe(record.upload.as_secs_f64());
            m.upload_bytes_raw.incr(raw_bytes);
            m.upload_bytes_sent.incr(upload_bytes);
        }
        self.emit_span(
            &record,
            SpanKind::Upload,
            upload_start,
            record.upload,
            upload_bytes,
        );

        let req = SuffixRequest {
            request_id,
            p,
            precision,
            upload_bytes,
            arrive: upload_end,
        };
        let disposition =
            self.suffix_disposition(endpoint, at, &req, backend, &mut retries, &mut spent);
        record.retries = retries;
        match disposition {
            Disposition::Faulted => {
                record.fallback_local = true;
                if failfast {
                    Ok(AttemptOutcome::Failed(FailedAttempt {
                        record,
                        resume_at: upload_end,
                        endpoint,
                        retry_after: None,
                        spent,
                    }))
                } else {
                    Ok(AttemptOutcome::Complete(
                        self.complete_locally(endpoint, record, upload_end, device),
                    ))
                }
            }
            Disposition::Shed { retry_after, k } => {
                // Pre-seed the profile with the server's own load factor
                // so re-entry decisions are load-aware immediately.
                self.endpoints[endpoint].profile.set_k(k);
                self.endpoints[endpoint].breaker.record_failure(at);
                self.remember_retry_after(endpoint, retry_after);
                record.rejected = true;
                self.emit_span(&record, SpanKind::Rejected, upload_end, retry_after, 0);
                if failfast {
                    Ok(AttemptOutcome::Failed(FailedAttempt {
                        record,
                        resume_at: upload_end,
                        endpoint,
                        retry_after: Some(retry_after),
                        spent,
                    }))
                } else {
                    Ok(AttemptOutcome::Complete(
                        self.complete_locally(endpoint, record, upload_end, device),
                    ))
                }
            }
            Disposition::Ran(SuffixOutcome::Done { completion }) => {
                Ok(AttemptOutcome::Complete(self.settle(
                    endpoint,
                    record,
                    upload_end,
                    completion,
                    policy_decided,
                    backend,
                    transport,
                )))
            }
            Disposition::Ran(SuffixOutcome::Pending { task }) => {
                Ok(AttemptOutcome::Deferred(PendingRequest {
                    task,
                    arrive: upload_end,
                    record,
                    policy_decided,
                    endpoint,
                }))
            }
            Disposition::Ran(SuffixOutcome::Rejected { .. }) => {
                unreachable!("rejections are routed to Disposition::Shed")
            }
        }
    }

    /// Runs the suffix exchange loop for `req` against `endpoint`,
    /// classifying how the hand-off ended: accepted, shed by admission
    /// control, or lost to wire faults (breaker/cooldown updated).
    fn suffix_disposition<S>(
        &mut self,
        endpoint: usize,
        at: SimTime,
        req: &SuffixRequest,
        backend: &mut S,
        retries: &mut u32,
        spent: &mut Duration,
    ) -> Disposition
    where
        S: ServerBackend + ?Sized,
    {
        let mut attempt = 0u32;
        loop {
            match backend.execute_suffix(&self.graph, req, &mut self.rng) {
                // A rejection is the server telling us it is overloaded:
                // never retried, counted toward the breaker.
                Ok(SuffixOutcome::Rejected { retry_after, k }) => {
                    break Disposition::Shed { retry_after, k };
                }
                Ok(outcome) => {
                    self.endpoints[endpoint].breaker.record_success(at);
                    break Disposition::Ran(outcome);
                }
                Err(e) if e.is_transient() && attempt < self.config.max_retries => {
                    attempt += 1;
                    *retries += 1;
                    if !self.backoff_sleep(endpoint, attempt, spent) {
                        // Retry budget exhausted: same degradation as a
                        // non-transient failure.
                        self.fault_endpoint(endpoint, at);
                        break Disposition::Faulted;
                    }
                }
                Err(_) => {
                    self.fault_endpoint(endpoint, at);
                    break Disposition::Faulted;
                }
            }
        }
    }

    /// Re-issues the suffix of a failed attempt on another endpoint: the
    /// partition point is fixed (the prefix already ran), so the crossing
    /// tensors are re-uploaded over the new endpoint's link and exactly
    /// the same `SuffixRequest` (same request id, same `p`) is handed to
    /// the new server — the request is neither duplicated nor dropped.
    /// On success the record settles as a genuine end-to-end measurement
    /// (the policy feedback hook is skipped: the decision context belonged
    /// to the original endpoint). On failure another [`FailedAttempt`]
    /// comes back for the driver to route further or complete locally.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from the re-upload leg.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered.
    pub fn failover_on<S, T>(
        &mut self,
        endpoint: usize,
        failed: FailedAttempt,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<AttemptOutcome, ProtocolError>
    where
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        let FailedAttempt {
            mut record,
            resume_at,
            mut spent,
            ..
        } = failed;
        backend.advance(resume_at);
        let cooling = self.endpoints[endpoint].profile.in_cooldown(resume_at);
        let gate = if cooling {
            WireGate::Block
        } else {
            self.endpoints[endpoint].breaker.gate(resume_at)
        };
        if gate == WireGate::Block {
            // Target unusable; hand the attempt back unchanged (flags
            // still describe the previous failure) for further routing.
            return Ok(AttemptOutcome::Failed(FailedAttempt {
                retry_after: None,
                record,
                resume_at,
                endpoint,
                spent,
            }));
        }
        // This attempt decides the record's fate anew.
        record.fallback_local = false;
        record.rejected = false;
        let upload_end = transport.upload(
            self.endpoints[endpoint].profile.probe_profiler_mut(),
            record.uploaded_bytes,
            resume_at,
            &mut self.rng,
        )?;
        record.upload += upload_end.since(resume_at);
        self.emit_span(
            &record,
            SpanKind::Upload,
            resume_at,
            upload_end.since(resume_at),
            record.uploaded_bytes,
        );
        let req = SuffixRequest {
            request_id: record.request_id,
            p: record.p,
            precision: record.precision,
            upload_bytes: record.uploaded_bytes,
            arrive: upload_end,
        };
        let mut retries = record.retries;
        let disposition =
            self.suffix_disposition(endpoint, resume_at, &req, backend, &mut retries, &mut spent);
        record.retries = retries;
        match disposition {
            Disposition::Faulted => {
                record.fallback_local = true;
                Ok(AttemptOutcome::Failed(FailedAttempt {
                    record,
                    resume_at: upload_end,
                    endpoint,
                    retry_after: None,
                    spent,
                }))
            }
            Disposition::Shed { retry_after, k } => {
                self.endpoints[endpoint].profile.set_k(k);
                self.endpoints[endpoint].breaker.record_failure(resume_at);
                self.remember_retry_after(endpoint, retry_after);
                record.rejected = true;
                self.emit_span(&record, SpanKind::Rejected, upload_end, retry_after, 0);
                Ok(AttemptOutcome::Failed(FailedAttempt {
                    record,
                    resume_at: upload_end,
                    endpoint,
                    retry_after: Some(retry_after),
                    spent,
                }))
            }
            Disposition::Ran(SuffixOutcome::Done { completion }) => {
                Ok(AttemptOutcome::Complete(self.settle(
                    endpoint, record, upload_end, completion, false, backend, transport,
                )))
            }
            Disposition::Ran(SuffixOutcome::Pending { task }) => {
                Ok(AttemptOutcome::Deferred(PendingRequest {
                    task,
                    arrive: upload_end,
                    record,
                    policy_decided: false,
                    endpoint,
                }))
            }
            Disposition::Ran(SuffixOutcome::Rejected { .. }) => {
                unreachable!("rejections are routed to Disposition::Shed")
            }
        }
    }

    /// Gives up on the wire for a failed attempt: the device re-executes
    /// the remaining layers itself. The record keeps the failure flags of
    /// the last attempt (`fallback_local` for wire faults, `rejected` for
    /// admission sheds).
    pub fn complete_failed<D: DeviceExecutor + ?Sized>(
        &mut self,
        failed: FailedAttempt,
        device: &mut D,
    ) -> InferenceRecord {
        self.complete_locally(failed.endpoint, failed.record, failed.resume_at, device)
    }

    /// Graceful degradation: the suffix exchange is lost (wire fault) or
    /// shed (admission control), so the device re-executes the remaining
    /// layers `L_{p+1}..L_n` itself, starting at the moment the engine
    /// gave up on the wire. The caller flags *why* on the record
    /// (`fallback_local` vs `rejected`) before handing it in.
    fn complete_locally<D: DeviceExecutor + ?Sized>(
        &mut self,
        endpoint: usize,
        mut record: InferenceRecord,
        resume_at: SimTime,
        device: &mut D,
    ) -> InferenceRecord {
        let local = device.execute_range(&self.graph, record.p, self.graph.len(), &mut self.rng);
        record.device += local;
        record.server = SimDuration::ZERO;
        record.download = SimDuration::ZERO;
        record.total = (resume_at + local).since(record.start);
        self.observe_finish(endpoint, &record);
        record
    }

    /// Completes a deferred request once the driver observed its
    /// completion time.
    pub fn finish<S, T>(
        &mut self,
        pending: PendingRequest,
        completion: SimTime,
        backend: &mut S,
        transport: &mut T,
    ) -> InferenceRecord
    where
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        self.settle(
            pending.endpoint,
            pending.record,
            pending.arrive,
            completion,
            pending.policy_decided,
            backend,
            transport,
        )
    }

    /// Runs one request to completion, blocking on the backend if it
    /// queues.
    ///
    /// # Errors
    ///
    /// Propagates transport/backend failures (wire runtimes only).
    pub fn run<D, S, T>(
        &mut self,
        at: SimTime,
        device: &mut D,
        backend: &mut S,
        transport: &mut T,
    ) -> Result<InferenceRecord, ProtocolError>
    where
        D: DeviceExecutor + ?Sized,
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        match self.start(at, device, backend, transport)? {
            Outcome::Complete(record) => Ok(record),
            Outcome::Deferred(pending) => {
                let completion = backend.wait(pending.task);
                Ok(self.finish(pending, completion, backend, transport))
            }
        }
    }

    /// Shared tail of every offloaded request: measure server time, feed
    /// the load tracker, optionally download the result.
    #[allow(clippy::too_many_arguments)]
    fn settle<S, T>(
        &mut self,
        endpoint: usize,
        mut record: InferenceRecord,
        arrive: SimTime,
        completion: SimTime,
        policy_decided: bool,
        backend: &mut S,
        transport: &mut T,
    ) -> InferenceRecord
    where
        S: ServerBackend + ?Sized,
        T: Transport + ?Sized,
    {
        let server = completion.since(arrive);
        record.server = server;
        // The tracker normalises against the *unscaled* model prediction
        // for this suffix — the §III-C observed/predicted ratio.
        let predicted = SimDuration::from_secs_f64(self.solver.suffix_edge_secs(record.p));
        backend.complete(completion, server, predicted);
        if let Some(m) = &self.metrics {
            m.server_seconds.observe(server.as_secs_f64());
        }
        self.emit_span(&record, SpanKind::ServerSuffix, arrive, server, 0);
        let mut end = completion;
        if self.config.model_download {
            let dl_end = transport.download(self.graph.output().size_bytes(), end, &mut self.rng);
            record.download = dl_end.since(end);
            end = dl_end;
        }
        record.total = end.since(record.start);
        self.feedback(policy_decided, &record);
        self.observe_finish(endpoint, &record);
        record
    }

    /// Runs the installed policy against `endpoint`'s current profile
    /// (its bandwidth estimate and cached `k`) without touching the wire.
    /// Cluster drivers call this once per candidate endpoint to rank the
    /// joint (server, p) decision; `None` until the endpoint has a
    /// bandwidth estimate.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` was never registered.
    pub fn decide_on(
        &mut self,
        endpoint: usize,
        now: SimTime,
    ) -> Option<crate::algorithm::Decision> {
        let profile = &self.endpoints[endpoint].profile;
        let bandwidth = profile.bandwidth_mbps(now)?;
        let k = profile.k();
        let ctx = PolicyContext {
            solver: &self.solver,
            bandwidth_mbps: bandwidth,
            k,
            now,
        };
        Some(self.policy.decide(&ctx))
    }
}

//! The unified per-request telemetry record.

use lp_graph::Precision;
use lp_sim::{SimDuration, SimTime};

/// Everything measured about one inference request, regardless of which
/// driver (co-simulation, threaded wire runtime, multi-client run)
/// executed it.
///
/// Fields a driver cannot measure are zero: the threaded runtime does not
/// model device compute or transfer time, and local inferences never touch
/// the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceRecord {
    /// Request id, unique per engine (monotonically increasing).
    pub request_id: u64,
    /// Index of the client that issued the request (0 for single-client
    /// drivers).
    pub client: usize,
    /// Request submission time.
    pub start: SimTime,
    /// Chosen partition point.
    pub p: usize,
    /// Load factor the decision used.
    pub k_used: f64,
    /// Bandwidth estimate (Mbps) the decision used.
    pub bandwidth_est_mbps: f64,
    /// Latency the policy predicted.
    pub predicted: SimDuration,
    /// Measured device-side compute time.
    pub device: SimDuration,
    /// Measured upload time (including link latency).
    pub upload: SimDuration,
    /// Upload-tensor precision the decision negotiated (fp32 unless a
    /// quantization-aware policy picked a narrower width).
    pub precision: Precision,
    /// Bytes shipped to the server (0 for local inference; at a narrow
    /// precision this is the *packed* size).
    pub uploaded_bytes: u64,
    /// Fp32 bytes of the crossing tensors before quantization (equals
    /// `uploaded_bytes` on the fp32 path, 0 for local inference).
    pub raw_bytes: u64,
    /// Measured server time (queueing + execution).
    pub server: SimDuration,
    /// Measured download time (zero unless the config enables the
    /// result-download leg).
    pub download: SimDuration,
    /// Measured end-to-end latency.
    pub total: SimDuration,
    /// Whether the device-side partition cache hit.
    pub cache_hit: bool,
    /// Whether the offload path failed mid-request and the device
    /// completed the remaining layers locally (graceful degradation).
    pub fallback_local: bool,
    /// Whether the server's admission control shed this request (the
    /// suffix then ran locally, but this was load shedding — not a wire
    /// fault, so it is counted separately from `fallback_local`).
    pub rejected: bool,
    /// How many wire exchanges were retried while serving this request
    /// (probes, load queries and offload attempts combined).
    pub retries: u32,
}

impl InferenceRecord {
    /// Whether any part of the request left the device.
    #[must_use]
    pub fn offloaded(&self) -> bool {
        self.uploaded_bytes > 0
    }

    /// Upload bytes saved by quantization (0 on the fp32 path).
    #[must_use]
    pub fn bytes_saved(&self) -> u64 {
        self.raw_bytes.saturating_sub(self.uploaded_bytes)
    }
}

//! The device-side runtime profile: bandwidth estimate + load factor.
//!
//! The paper's runtime profiler is a device thread that periodically (§IV,
//! 5 s period) probes the upload bandwidth and asks the server for the
//! current load influence factor `k`. [`RuntimeProfile`] is that thread's
//! state, made driver-agnostic: probes go through a [`Transport`] and the
//! `k` query through a [`ServerBackend`], so the same cadence logic serves
//! the co-simulation, the wire runtime and multi-client runs.

use crate::engine::{ServerBackend, Transport};
use crate::protocol::ProtocolError;
use crate::telemetry::Telemetry;
use lp_net::ProbeProfiler;
use lp_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// How many refresh periods a bandwidth sample stays relevant. Eight
/// periods matches the default window of eight samples probed once per
/// period, so a healthy steady-state window is never shrunk by age.
const MAX_SAMPLE_AGE_PERIODS: f64 = 8.0;

/// The state the periodic runtime-profiler action maintains.
#[derive(Debug)]
pub struct RuntimeProfile {
    probe: ProbeProfiler,
    period: SimDuration,
    cached_k: f64,
    last_refresh: Option<SimTime>,
    injected_mbps: Option<f64>,
    cooldown_until: Option<SimTime>,
}

impl RuntimeProfile {
    /// Creates a profile with the given estimator window and refresh
    /// period. Samples older than eight periods are evicted from the
    /// window (§IV's sliding window is over *recent* transfers; a long
    /// local-only stretch must read as cold, not as the last estimate).
    #[must_use]
    pub fn new(window: usize, period: SimDuration) -> Self {
        let mut probe = ProbeProfiler::new(window);
        probe.estimator = probe
            .estimator
            .clone()
            .with_max_age(period.scale(MAX_SAMPLE_AGE_PERIODS));
        Self {
            probe,
            period,
            cached_k: 1.0,
            last_refresh: None,
            injected_mbps: None,
            cooldown_until: None,
        }
    }

    /// The probe profiler (estimator window + probe sizing), for
    /// inspection.
    #[must_use]
    pub fn probe_profiler(&self) -> &ProbeProfiler {
        &self.probe
    }

    /// Mutable access for transports that feed passive measurements.
    #[must_use]
    pub fn probe_profiler_mut(&mut self) -> &mut ProbeProfiler {
        &mut self.probe
    }

    /// Overrides the bandwidth estimate with an externally supplied value
    /// (the threaded runtime injects the bandwidth instead of measuring a
    /// simulated link). Probing still happens, but the estimate is pinned.
    pub fn inject_bandwidth(&mut self, mbps: f64) {
        self.injected_mbps = Some(mbps);
    }

    /// The load factor most recently fetched from the server.
    #[must_use]
    pub fn k(&self) -> f64 {
        self.cached_k
    }

    /// Replaces the cached load factor (an explicit, out-of-cadence `k`
    /// fetch).
    pub fn set_k(&mut self, k: f64) {
        self.cached_k = k;
    }

    /// The bandwidth estimate decisions should use at `now`: the injected
    /// value if any, else the window mean over samples that have not aged
    /// out. `None` before any sample or once every sample is stale.
    #[must_use]
    pub fn bandwidth_mbps(&self, now: SimTime) -> Option<f64> {
        self.injected_mbps
            .or_else(|| self.probe.estimator.estimate_mbps_at(now))
    }

    /// Starts (or extends) the post-fault cooldown: until `now + for_` the
    /// engine biases decisions local and does not touch the wire.
    pub fn enter_cooldown(&mut self, now: SimTime, for_: SimDuration) {
        self.cooldown_until = Some(now + for_);
    }

    /// Whether the profile is cooling down after a wire fault at `now`.
    #[must_use]
    pub fn in_cooldown(&self, now: SimTime) -> bool {
        self.cooldown_until.is_some_and(|until| now < until)
    }

    /// When the current cooldown expires, if one is active at all.
    #[must_use]
    pub fn cooldown_until(&self) -> Option<SimTime> {
        self.cooldown_until
    }

    /// Runs the periodic profiler action if it is due at `now`: probe the
    /// bandwidth and fetch `k` from the server.
    ///
    /// On a cold start the estimator window is filled with a back-to-back
    /// probe burst rather than a single probe. A single jittered sample is
    /// a poor first estimate — when the local/offload margin is a few
    /// percent (VGG16 at 1 Mbps) one unlucky draw can park the client on
    /// the wrong side of the crossing for many periods, because a
    /// locally-inferring client adds no passive samples to heal the
    /// window. A full window's mean has `1/sqrt(w)` of the jitter.
    ///
    /// # Errors
    ///
    /// Propagates transport/backend failures (wire runtimes only; the
    /// co-simulated transport and backend are infallible). A failed
    /// refresh does **not** count as done: `last_refresh` is committed
    /// only when every probe and the `k` fetch succeeded, so the engine
    /// can retry the same instant.
    pub fn refresh<T: Transport + ?Sized, S: ServerBackend + ?Sized>(
        &mut self,
        now: SimTime,
        transport: &mut T,
        backend: &mut S,
        rng: &mut StdRng,
        telemetry: &Telemetry,
    ) -> Result<(), ProtocolError> {
        let due = match self.last_refresh {
            None => true,
            Some(prev) => now.since(prev) >= self.period,
        };
        if !due {
            return Ok(());
        }
        self.refresh_now(now, transport, backend, rng, telemetry)
    }

    /// Runs the profiler action immediately, regardless of the cadence —
    /// the circuit breaker's half-open probe, which must touch the wire to
    /// prove the server recovered. Commits the cadence like a due refresh.
    ///
    /// # Errors
    ///
    /// Propagates transport/backend failures, like
    /// [`RuntimeProfile::refresh`].
    pub fn refresh_now<T: Transport + ?Sized, S: ServerBackend + ?Sized>(
        &mut self,
        now: SimTime,
        transport: &mut T,
        backend: &mut S,
        rng: &mut StdRng,
        telemetry: &Telemetry,
    ) -> Result<(), ProtocolError> {
        let deficit = if self.injected_mbps.is_none() {
            self.probe
                .estimator
                .window()
                .saturating_sub(self.probe.estimator.len())
        } else {
            0
        };
        for _ in 0..deficit.max(1) {
            transport.probe(&mut self.probe, now, rng)?;
        }
        self.cached_k = backend.query_k(now)?;
        self.last_refresh = Some(now);
        // A full probe + k round trip succeeded: the wire is healthy
        // again, so stop biasing decisions local.
        self.cooldown_until = None;
        if telemetry.is_enabled() {
            telemetry.incr("profile.refreshes_total", 1);
            telemetry.set_gauge("profile.k", self.cached_k);
            if let Some(mbps) = self.bandwidth_mbps(now) {
                telemetry.set_gauge("profile.bandwidth_mbps", mbps);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::backends::LinkTransport;
    use crate::engine::{SuffixOutcome, SuffixRequest};
    use lp_graph::ComputationGraph;
    use lp_net::{BandwidthTrace, Link};
    use rand::SeedableRng;

    struct FixedK(f64);

    impl ServerBackend for FixedK {
        fn query_k(&mut self, _now: SimTime) -> Result<f64, ProtocolError> {
            Ok(self.0)
        }
        fn execute_suffix(
            &mut self,
            _graph: &ComputationGraph,
            _req: &SuffixRequest,
            _rng: &mut StdRng,
        ) -> Result<SuffixOutcome, ProtocolError> {
            unreachable!("profile tests never offload")
        }
        fn complete(
            &mut self,
            _completion: SimTime,
            _observed: SimDuration,
            _predicted: SimDuration,
        ) {
        }
    }

    #[test]
    fn cold_start_fills_the_window() {
        let link = Link::symmetric(BandwidthTrace::constant(8.0));
        let mut transport = LinkTransport { link: &link };
        let mut profile = RuntimeProfile::new(8, SimDuration::from_secs(5));
        let mut rng = StdRng::seed_from_u64(1);
        profile
            .refresh(
                SimTime::ZERO,
                &mut transport,
                &mut FixedK(1.0),
                &mut rng,
                &Telemetry::disabled(),
            )
            .expect("infallible");
        assert_eq!(profile.probe_profiler().estimator.len(), 8);
        let est = profile.bandwidth_mbps(SimTime::ZERO).expect("warmed");
        assert!((est - 8.0).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn steady_state_probes_once_per_period() {
        let link = Link::symmetric(BandwidthTrace::constant(8.0));
        let mut transport = LinkTransport { link: &link };
        let mut profile = RuntimeProfile::new(4, SimDuration::from_secs(5));
        let mut rng = StdRng::seed_from_u64(2);
        let mut now = SimTime::ZERO;
        profile
            .refresh(
                now,
                &mut transport,
                &mut FixedK(1.0),
                &mut rng,
                &Telemetry::disabled(),
            )
            .expect("infallible");
        // Not due yet: no extra samples.
        now += SimDuration::from_secs(1);
        profile
            .refresh(
                now,
                &mut transport,
                &mut FixedK(2.0),
                &mut rng,
                &Telemetry::disabled(),
            )
            .expect("infallible");
        assert_eq!(profile.k(), 1.0, "k fetch must respect the cadence");
        // Due again: exactly one more probe (window already full).
        now += SimDuration::from_secs(5);
        profile
            .refresh(
                now,
                &mut transport,
                &mut FixedK(2.0),
                &mut rng,
                &Telemetry::disabled(),
            )
            .expect("infallible");
        assert_eq!(profile.k(), 2.0);
        assert_eq!(profile.probe_profiler().estimator.len(), 4);
    }

    #[test]
    fn injected_bandwidth_pins_the_estimate() {
        let mut profile = RuntimeProfile::new(4, SimDuration::from_secs(5));
        assert_eq!(profile.bandwidth_mbps(SimTime::ZERO), None);
        profile.inject_bandwidth(16.0);
        assert_eq!(profile.bandwidth_mbps(SimTime::ZERO), Some(16.0));
    }

    #[test]
    fn cooldown_expires_with_time_and_clears_on_successful_refresh() {
        let mut profile = RuntimeProfile::new(4, SimDuration::from_secs(5));
        let t0 = SimTime::ZERO;
        assert!(!profile.in_cooldown(t0));
        profile.enter_cooldown(t0, SimDuration::from_secs(10));
        assert!(profile.in_cooldown(t0 + SimDuration::from_secs(9)));
        assert!(!profile.in_cooldown(t0 + SimDuration::from_secs(10)));
        // A successful probe + k round trip ends the cooldown early.
        profile.enter_cooldown(t0, SimDuration::from_secs(100));
        assert!(profile.in_cooldown(t0 + SimDuration::from_secs(50)));
        let link = Link::symmetric(BandwidthTrace::constant(8.0));
        let mut transport = LinkTransport { link: &link };
        let mut rng = StdRng::seed_from_u64(3);
        profile
            .refresh(
                t0,
                &mut transport,
                &mut FixedK(1.0),
                &mut rng,
                &Telemetry::disabled(),
            )
            .expect("infallible");
        assert!(!profile.in_cooldown(t0 + SimDuration::from_secs(50)));
        assert_eq!(profile.cooldown_until(), None);
    }

    #[test]
    fn failed_refresh_does_not_count_as_done() {
        struct FailingK;
        impl ServerBackend for FailingK {
            fn query_k(&mut self, _now: SimTime) -> Result<f64, ProtocolError> {
                Err(ProtocolError::Timeout)
            }
            fn execute_suffix(
                &mut self,
                _graph: &ComputationGraph,
                _req: &SuffixRequest,
                _rng: &mut StdRng,
            ) -> Result<SuffixOutcome, ProtocolError> {
                unreachable!("profile tests never offload")
            }
            fn complete(
                &mut self,
                _completion: SimTime,
                _observed: SimDuration,
                _predicted: SimDuration,
            ) {
            }
        }
        let link = Link::symmetric(BandwidthTrace::constant(8.0));
        let mut transport = LinkTransport { link: &link };
        let mut profile = RuntimeProfile::new(2, SimDuration::from_secs(5));
        let mut rng = StdRng::seed_from_u64(4);
        let err = profile
            .refresh(
                SimTime::ZERO,
                &mut transport,
                &mut FailingK,
                &mut rng,
                &Telemetry::disabled(),
            )
            .expect_err("k fetch fails");
        assert_eq!(err, ProtocolError::Timeout);
        // Still due at the same instant: a retry runs the k fetch again
        // instead of being swallowed by the cadence check.
        profile
            .refresh(
                SimTime::ZERO,
                &mut transport,
                &mut FixedK(3.0),
                &mut rng,
                &Telemetry::disabled(),
            )
            .expect("retry succeeds");
        assert_eq!(profile.k(), 3.0);
    }
}

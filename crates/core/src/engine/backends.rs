//! The concrete device/transport/server implementations the drivers
//! compose the engine from.
//!
//! * [`SimulatedDevice`] + [`LinkTransport`] + [`GpuBackend`] — the
//!   co-simulation: sampled latency models, a jittered [`Link`], and a
//!   queueing [`GpuSim`]. `OffloadingSystem` uses them with an exclusive
//!   GPU and the watchdog armed; `multi_client_run` shares one GPU and
//!   tracker across all clients' backends.
//! * [`NullDevice`] + [`WireTransport`] + [`WireBackend`] — the threaded
//!   runtime: logical time, everything crossing the client/server boundary
//!   framed as [`Message`]s over channels.
//!
//! The wire backends are written for a hostile wire: every receive runs
//! against a deadline ([`FrameChannel::recv_deadline`]), stale frames left
//! over from a timed-out earlier exchange are skipped rather than
//! mis-attributed, and a dead or silent server surfaces as
//! [`ProtocolError::Disconnected`] / [`ProtocolError::Timeout`] for the
//! engine's retry-and-degrade logic — never as a client panic.

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::cache::PartitionCache;
use crate::engine::{DeviceExecutor, ServerBackend, SuffixOutcome, SuffixRequest, Transport};
use crate::pool::zero_payload;
use crate::protocol::{Frame, Message, ProtocolError};
use crate::threaded::{FrameChannel, ServerHandle};
use lp_graph::ComputationGraph;
use lp_hardware::{DeviceModel, GpuModel, GpuSim, TaskId};
use lp_net::{Link, ProbeProfiler};
use lp_profiler::{GpuUtilWatchdog, LoadFactorTracker};
use lp_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use std::time::{Duration, Instant};

/// Device execution by sampling a [`DeviceModel`] per node.
#[derive(Debug)]
pub struct SimulatedDevice<'a> {
    /// Latency model of the user-end device.
    pub model: &'a DeviceModel,
}

impl DeviceExecutor for SimulatedDevice<'_> {
    fn execute_range(
        &mut self,
        graph: &ComputationGraph,
        from: usize,
        to: usize,
        rng: &mut StdRng,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for node in graph.nodes().iter().take(to).skip(from) {
            total += self.model.sample(
                &node.kind,
                graph.value_desc(node.inputs[0]),
                &node.output,
                rng,
            );
        }
        total
    }
}

/// A device that does not model compute time (the threaded runtime's
/// logical time).
#[derive(Debug)]
pub struct NullDevice;

impl DeviceExecutor for NullDevice {
    fn execute_range(
        &mut self,
        _graph: &ComputationGraph,
        _from: usize,
        _to: usize,
        _rng: &mut StdRng,
    ) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Transport over a simulated [`Link`]: probes and uploads both feed the
/// bandwidth estimator.
#[derive(Debug)]
pub struct LinkTransport<'a> {
    /// The device<->server link.
    pub link: &'a Link,
}

impl Transport for LinkTransport<'_> {
    fn probe(
        &mut self,
        profiler: &mut ProbeProfiler,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Result<(), ProtocolError> {
        let (_mbps, _end) = profiler.probe(self.link, now, rng);
        Ok(())
    }

    fn upload(
        &mut self,
        profiler: &mut ProbeProfiler,
        bytes: u64,
        start: SimTime,
        rng: &mut StdRng,
    ) -> Result<SimTime, ProtocolError> {
        let end = self.link.upload_end(bytes, start, rng);
        profiler.record_passive(bytes, start, end, self.link.latency);
        Ok(end)
    }

    fn download(&mut self, bytes: u64, start: SimTime, rng: &mut StdRng) -> SimTime {
        self.link.download_end(bytes, start, rng)
    }
}

/// Server backend over a (possibly shared) [`GpuSim`]: suffix kernels are
/// sampled from the edge latency model and submitted to the simulator's
/// real queueing; `k` comes from the [`LoadFactorTracker`] every backend
/// view shares.
#[derive(Debug)]
pub struct GpuBackend<'a> {
    /// The edge GPU simulator (shared across clients in multi-client
    /// runs).
    pub gpu: &'a mut GpuSim,
    /// Kernel-latency model of the edge GPU.
    pub gpu_model: &'a GpuModel,
    /// The GPU context this client's suffixes run in.
    pub ctx: usize,
    /// The server-side load tracker (shared).
    pub tracker: &'a mut LoadFactorTracker,
    /// The GPU-utilization watchdog, when the driver arms one.
    pub watchdog: Option<&'a mut GpuUtilWatchdog>,
    /// The server-side partition cache (Figure 5 extraction).
    pub server_cache: &'a PartitionCache,
    /// Admission control, when the driver bounds the pending-work budget
    /// (`None` = admit everything, the pre-overload-protection behaviour).
    pub admission: Option<&'a mut AdmissionController>,
}

impl ServerBackend for GpuBackend<'_> {
    fn advance(&mut self, now: SimTime) {
        self.gpu.advance_to(now);
    }

    fn monitor(&mut self, now: SimTime) {
        if let Some(watchdog) = self.watchdog.as_deref_mut() {
            watchdog.poll(now, self.gpu.busy_time(), self.tracker);
        }
    }

    fn query_k(&mut self, now: SimTime) -> Result<f64, ProtocolError> {
        Ok(self.tracker.k_at(now))
    }

    fn execute_suffix(
        &mut self,
        graph: &ComputationGraph,
        req: &SuffixRequest,
        rng: &mut StdRng,
    ) -> Result<SuffixOutcome, ProtocolError> {
        let (_suffix, _hit) = self
            .server_cache
            .get_or_partition(graph, req.p)
            .expect("p in range");
        self.gpu.advance_to(req.arrive);
        let n = graph.len();
        let kernels: Vec<SimDuration> = graph
            .nodes()
            .iter()
            .take(n)
            .skip(req.p)
            .map(|node| {
                self.gpu_model.sample(
                    &node.kind,
                    graph.value_desc(node.inputs[0]),
                    &node.output,
                    rng,
                )
            })
            .collect();
        // advance_to can overshoot a slice boundary; the request becomes
        // visible to the scheduler at the GPU's current instant (the gap
        // is genuine queueing behind the in-flight kernel).
        let submit_at = req.arrive.max(self.gpu.now());
        if let Some(admission) = self.admission.as_deref_mut() {
            // Predicted occupancy = contention-free kernel time stretched
            // by the current load factor — the same §III-C signal the
            // clients decide on.
            let predicted = kernels
                .iter()
                .fold(SimDuration::ZERO, |acc, &kernel| acc + kernel);
            let k = self.tracker.k_at(submit_at).max(1.0);
            if let AdmissionDecision::Reject { retry_after } =
                admission.assess(submit_at, predicted.scale(k))
            {
                return Ok(SuffixOutcome::Rejected { retry_after, k });
            }
        }
        let task = self.gpu.submit(self.ctx, submit_at, kernels);
        Ok(SuffixOutcome::Pending { task })
    }

    fn wait(&mut self, task: TaskId) -> SimTime {
        self.gpu.run_until_complete(task)
    }

    fn complete(&mut self, completion: SimTime, observed: SimDuration, predicted: SimDuration) {
        self.tracker.record(completion, observed, predicted);
    }
}

/// Decodes a reply frame received mid-exchange. A well-formed frame from
/// a newer protocol revision (unknown tag) is reported as
/// [`ProtocolError::Unexpected`] — an old client talking to a new server
/// fails safe exactly like an out-of-order frame (retry, then local
/// fallback), instead of treating the peer's valid frame as corruption.
fn decode_reply(frame: Frame) -> Result<Message, ProtocolError> {
    Message::decode_frame(frame).map_err(|e| match e {
        ProtocolError::UnknownTag(tag) => ProtocolError::Unexpected(tag),
        other => other,
    })
}

/// Server backend over the wire protocol: suffixes and load queries are
/// framed [`Message`]s answered by a [`ServerHandle`]'s server thread (or
/// any other [`FrameChannel`], e.g. a fault injector wrapping one).
#[derive(Debug)]
pub struct WireBackend<'a, C: FrameChannel + ?Sized = ServerHandle> {
    /// The frame pipe to the server.
    pub server: &'a C,
    /// Wall-clock budget for one exchange (send + matching reply).
    pub deadline: Duration,
}

impl<C: FrameChannel + ?Sized> ServerBackend for WireBackend<'_, C> {
    fn query_k(&mut self, _now: SimTime) -> Result<f64, ProtocolError> {
        self.server.send_split(Message::LoadQuery.to_frame()?)?;
        let deadline = Instant::now() + self.deadline;
        loop {
            match decode_reply(self.server.recv_split_deadline(deadline)?)? {
                Message::LoadReply { k_micro } => return Ok(Message::micro_to_k(k_micro)),
                // Stale survivors of a timed-out earlier exchange: skip.
                Message::OffloadResponse { .. } | Message::ProbeAck | Message::Rejected { .. } => {
                    continue
                }
                other => return Err(ProtocolError::Unexpected(other.tag())),
            }
        }
    }

    fn execute_suffix(
        &mut self,
        graph: &ComputationGraph,
        req: &SuffixRequest,
        _rng: &mut StdRng,
    ) -> Result<SuffixOutcome, ProtocolError> {
        // The simulated tensor payload comes from the shared zero pool and
        // rides the frame as an `Arc` reference — no per-request
        // allocation, no memcpy on the in-process channel path.
        let frame = Message::OffloadRequest {
            request_id: req.request_id,
            partition_point: req.p as u32,
            precision: req.precision,
            payload: zero_payload(req.upload_bytes as usize),
        }
        .to_frame()?;
        self.server.send_split(frame)?;
        let deadline = Instant::now() + self.deadline;
        loop {
            match decode_reply(self.server.recv_split_deadline(deadline)?)? {
                Message::OffloadResponse {
                    request_id,
                    server_time_us,
                    payload,
                } if request_id == req.request_id => {
                    debug_assert_eq!(payload.len() as u64, graph.output().size_bytes());
                    let server_time = SimDuration::from_micros_f64(server_time_us as f64);
                    return Ok(SuffixOutcome::Done {
                        completion: req.arrive + server_time,
                    });
                }
                // Admission control shed this request: surface the
                // rejection (with the piggybacked load factor) so the
                // engine degrades without retrying.
                Message::Rejected {
                    request_id,
                    retry_after_us,
                    k_micro,
                } if request_id == req.request_id => {
                    return Ok(SuffixOutcome::Rejected {
                        retry_after: SimDuration::from_micros(retry_after_us),
                        k: Message::micro_to_k(k_micro),
                    });
                }
                // A response to a request we already gave up on, or a
                // stale ack/reply from a timed-out probe/query: skip.
                Message::OffloadResponse { .. }
                | Message::ProbeAck
                | Message::LoadReply { .. }
                | Message::Rejected { .. } => continue,
                other => return Err(ProtocolError::Unexpected(other.tag())),
            }
        }
    }

    fn complete(&mut self, _completion: SimTime, _observed: SimDuration, _predicted: SimDuration) {
        // The server thread's own tracker observed the execution when it
        // served the request; the client has nothing to record.
    }
}

/// Transport over the wire protocol: probes are framed round trips;
/// payloads ride inside the offload request, so transfer time is logical.
#[derive(Debug)]
pub struct WireTransport<'a, C: FrameChannel + ?Sized = ServerHandle> {
    /// The frame pipe to the server.
    pub server: &'a C,
    /// Wall-clock budget for one exchange (send + matching ack).
    pub deadline: Duration,
}

impl<C: FrameChannel + ?Sized> Transport for WireTransport<'_, C> {
    fn probe(
        &mut self,
        profiler: &mut ProbeProfiler,
        _now: SimTime,
        _rng: &mut StdRng,
    ) -> Result<(), ProtocolError> {
        let bytes = profiler.next_probe_bytes();
        let frame = Message::Probe {
            payload: zero_payload(bytes as usize),
        }
        .to_frame()?;
        self.server.send_split(frame)?;
        let deadline = Instant::now() + self.deadline;
        loop {
            match decode_reply(self.server.recv_split_deadline(deadline)?)? {
                Message::ProbeAck => return Ok(()),
                // Stale survivors of a timed-out earlier exchange: skip.
                Message::OffloadResponse { .. }
                | Message::LoadReply { .. }
                | Message::Rejected { .. } => continue,
                other => return Err(ProtocolError::Unexpected(other.tag())),
            }
        }
    }

    fn upload(
        &mut self,
        _profiler: &mut ProbeProfiler,
        _bytes: u64,
        start: SimTime,
        _rng: &mut StdRng,
    ) -> Result<SimTime, ProtocolError> {
        // The payload ships inside the OffloadRequest frame.
        Ok(start)
    }

    fn download(&mut self, _bytes: u64, start: SimTime, _rng: &mut StdRng) -> SimTime {
        start
    }
}

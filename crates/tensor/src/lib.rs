//! Tensor shapes, data types and size arithmetic for the LoADPart
//! reproduction.
//!
//! Everything in the partition-decision pipeline is driven by *metadata*
//! about tensors — their shapes, element counts and wire sizes — rather than
//! their numeric contents. This crate is the single source of truth for that
//! metadata.
//!
//! # Examples
//!
//! ```
//! use lp_tensor::{DType, Shape, TensorDesc};
//!
//! // The canonical ImageNet input of the paper's evaluation.
//! let input = TensorDesc::new(Shape::nchw(1, 3, 224, 224), DType::F32);
//! assert_eq!(input.numel(), 3 * 224 * 224);
//! assert_eq!(input.size_bytes(), 3 * 224 * 224 * 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod shape;

pub use shape::Shape;

/// Element type of a tensor.
///
/// The paper's evaluation runs FP32 inference on both platforms, but the
/// profiler and the transmission-size math are parameterised over the dtype
/// so that quantised deployments can be modelled too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit IEEE-754 float (the paper's setting).
    #[default]
    F32,
    /// 16-bit IEEE-754 float.
    F16,
    /// 8-bit signed integer (quantised inference).
    I8,
    /// 32-bit signed integer (index tensors).
    I32,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// assert_eq!(lp_tensor::DType::F32.size_bytes(), 4);
    /// assert_eq!(lp_tensor::DType::F16.size_bytes(), 2);
    /// ```
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::I8 => "i8",
            DType::I32 => "i32",
        };
        f.write_str(s)
    }
}

/// Description of a tensor: its [`Shape`] plus its [`DType`].
///
/// A `TensorDesc` is what flows along computation-graph edges; its
/// [`size_bytes`](TensorDesc::size_bytes) is the transmission size `s_i` used
/// by Problem (1) of the paper when the edge crosses the partition cut.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorDesc {
    shape: Shape,
    dtype: DType,
}

impl TensorDesc {
    /// Creates a descriptor from a shape and dtype.
    #[must_use]
    pub fn new(shape: Shape, dtype: DType) -> Self {
        Self { shape, dtype }
    }

    /// Creates an FP32 descriptor, the common case in the paper.
    ///
    /// ```
    /// use lp_tensor::{Shape, TensorDesc};
    /// let t = TensorDesc::f32(Shape::nchw(1, 64, 56, 56));
    /// assert_eq!(t.size_bytes(), 64 * 56 * 56 * 4);
    /// ```
    #[must_use]
    pub fn f32(shape: Shape) -> Self {
        Self::new(shape, DType::F32)
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Number of elements (`prod S_i` in Table I of the paper).
    #[must_use]
    pub fn numel(&self) -> u64 {
        self.shape.numel()
    }

    /// Wire size in bytes if this tensor is transmitted across the cut.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.numel() * self.dtype.size_bytes() as u64
    }
}

impl fmt::Display for TensorDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dtype, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::I32.size_bytes(), 4);
    }

    #[test]
    fn dtype_display() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::I8.to_string(), "i8");
    }

    #[test]
    fn desc_size_matches_paper_input_sizes() {
        // §III-D: InceptionV3's input 1x3x299x299 is reported as 1.02 MB.
        let inception_in = TensorDesc::f32(Shape::nchw(1, 3, 299, 299));
        let mb = inception_in.size_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 1.02).abs() < 0.01, "got {mb} MB");
    }

    #[test]
    fn desc_display() {
        let t = TensorDesc::f32(Shape::nchw(1, 3, 224, 224));
        assert_eq!(t.to_string(), "f32[1, 3, 224, 224]");
    }

    #[test]
    fn default_dtype_is_f32() {
        assert_eq!(DType::default(), DType::F32);
    }
}

//! N-dimensional tensor shapes.

use std::fmt;

/// The shape of a tensor: an ordered list of dimension extents.
///
/// Convolutional feature maps use the NCHW layout throughout this workspace
/// (batch, channels, height, width), matching the paper's notation
/// `N`, `C`, `H`, `W` in Tables I and II.
///
/// # Examples
///
/// ```
/// use lp_tensor::Shape;
///
/// let fm = Shape::nchw(1, 64, 56, 56);
/// assert_eq!(fm.channels(), Some(64));
/// assert_eq!(fm.numel(), 64 * 56 * 56);
///
/// let flat = Shape::nc(1, 4096);
/// assert_eq!(flat.rank(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from arbitrary dimensions.
    ///
    /// A zero-rank shape represents a scalar and has `numel() == 1`.
    #[must_use]
    pub fn new(dims: Vec<usize>) -> Self {
        Self(dims)
    }

    /// Creates a 4-D NCHW feature-map shape.
    #[must_use]
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self(vec![n, c, h, w])
    }

    /// Creates a 2-D (batch, features) shape as produced by Flatten and
    /// consumed by fully-connected layers.
    #[must_use]
    pub fn nc(n: usize, c: usize) -> Self {
        Self(vec![n, c])
    }

    /// The dimension extents.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (`prod S_i`); 1 for scalars.
    #[must_use]
    pub fn numel(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }

    /// Batch dimension `N` (axis 0), if the shape has one.
    #[must_use]
    pub fn batch(&self) -> Option<usize> {
        self.0.first().copied()
    }

    /// Channel dimension `C` (axis 1), if present.
    #[must_use]
    pub fn channels(&self) -> Option<usize> {
        self.0.get(1).copied()
    }

    /// Spatial height `H` (axis 2), if present.
    #[must_use]
    pub fn height(&self) -> Option<usize> {
        self.0.get(2).copied()
    }

    /// Spatial width `W` (axis 3), if present.
    #[must_use]
    pub fn width(&self) -> Option<usize> {
        self.0.get(3).copied()
    }

    /// Returns the flattened `(N, C*H*W*...)` version of this shape, as
    /// produced by a Flatten node.
    ///
    /// ```
    /// use lp_tensor::Shape;
    /// assert_eq!(Shape::nchw(1, 256, 6, 6).flattened(), Shape::nc(1, 256 * 6 * 6));
    /// ```
    #[must_use]
    pub fn flattened(&self) -> Shape {
        let n = self.batch().unwrap_or(1);
        let rest: u64 = self.0.iter().skip(1).map(|&d| d as u64).product();
        Shape::nc(n, rest as usize)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Self::new(dims.to_vec())
    }
}

/// Computes the output spatial extent of a convolution/pooling window.
///
/// Standard formula: `floor((input + 2*pad - kernel) / stride) + 1`.
///
/// # Panics
///
/// Panics if `stride == 0` or if the padded input is smaller than the
/// kernel, both of which indicate a malformed layer configuration.
///
/// ```
/// // AlexNet conv1: 224x224 input, 11x11 kernel, stride 4, pad 2 -> 55.
/// assert_eq!(lp_tensor::shape::conv_out_dim(224, 11, 4, 2), 55);
/// ```
#[must_use]
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Ceiling-mode variant of [`conv_out_dim`], used by some pooling layers
/// (e.g. SqueezeNet's max-pools use ceil mode in several frameworks).
///
/// # Panics
///
/// Panics under the same conditions as [`conv_out_dim`].
#[must_use]
pub fn conv_out_dim_ceil(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel).div_ceil(stride) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_accessors() {
        let s = Shape::nchw(2, 3, 224, 220);
        assert_eq!(s.batch(), Some(2));
        assert_eq!(s.channels(), Some(3));
        assert_eq!(s.height(), Some(224));
        assert_eq!(s.width(), Some(220));
        assert_eq!(s.rank(), 4);
    }

    #[test]
    fn scalar_numel_is_one() {
        assert_eq!(Shape::new(vec![]).numel(), 1);
    }

    #[test]
    fn numel_products() {
        assert_eq!(Shape::nchw(1, 3, 224, 224).numel(), 150_528);
        assert_eq!(Shape::nc(1, 1000).numel(), 1000);
    }

    #[test]
    fn flatten() {
        assert_eq!(Shape::nchw(4, 256, 6, 6).flattened(), Shape::nc(4, 9216));
        // Already-flat shapes are unchanged.
        assert_eq!(Shape::nc(1, 10).flattened(), Shape::nc(1, 10));
    }

    #[test]
    fn conv_dims_match_known_networks() {
        // AlexNet conv1 (k=11, s=4, p=2): 224 -> 55.
        assert_eq!(conv_out_dim(224, 11, 4, 2), 55);
        // AlexNet pool (k=3, s=2): 55 -> 27.
        assert_eq!(conv_out_dim(55, 3, 2, 0), 27);
        // VGG 3x3 same conv: 224 -> 224.
        assert_eq!(conv_out_dim(224, 3, 1, 1), 224);
        // ResNet stem (k=7, s=2, p=3): 224 -> 112.
        assert_eq!(conv_out_dim(224, 7, 2, 3), 112);
        // SqueezeNet conv1 (k=7, s=2, p=0) on 227: -> 111.
        assert_eq!(conv_out_dim(227, 7, 2, 0), 111);
    }

    #[test]
    fn ceil_mode_rounds_up() {
        // 112 -> pool k=3 s=2: floor gives 55, ceil gives 56.
        assert_eq!(conv_out_dim(112, 3, 2, 0), 55);
        assert_eq!(conv_out_dim_ceil(112, 3, 2, 0), 56);
        // 111 divides evenly, so floor and ceil agree at 55.
        assert_eq!(conv_out_dim_ceil(111, 3, 2, 0), conv_out_dim(111, 3, 2, 0));
        // Exact division: both agree.
        assert_eq!(conv_out_dim_ceil(55, 3, 2, 0), conv_out_dim(55, 3, 2, 0));
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = conv_out_dim(10, 3, 0, 0);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_panics() {
        let _ = conv_out_dim(2, 5, 1, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::nchw(1, 3, 4, 5).to_string(), "[1, 3, 4, 5]");
        assert_eq!(Shape::new(vec![]).to_string(), "[]");
    }

    #[test]
    fn from_conversions() {
        let v: Shape = vec![1, 2, 3].into();
        assert_eq!(v.dims(), &[1, 2, 3]);
        let s: Shape = (&[4usize, 5][..]).into();
        assert_eq!(s.dims(), &[4, 5]);
    }
}
